// Package simprof is the deterministic profiler for the simulation kernel.
// It implements sim.Profiler: the event loop routes every dispatch through
// Profile.Dispatch, which attributes wall-clock time, event counts, and
// (optionally) heap allocations to the event's (component, kind) label, and
// samples event-heap depth and live-timer gauges into the labeled metrics
// registry.
//
// The profiler draws a hard line between two classes of measurement:
//
//   - Deterministic: schedule/fire/cancel counts, event shares, first/last
//     simulated-time activity, and queue-depth statistics are all derived
//     from the simulation itself, so for a fixed seed they are identical
//     across runs. The default text/JSON/folded reports contain only these
//     and are byte-stable — profiler output is regression-testable the same
//     way traces and metrics are.
//   - Wall-clock: per-label wall time and allocations answer "where does
//     kernel time actually go" but vary run to run. They are included only
//     when ReportOptions.Wall is set (smbench -prof-wall).
//
// A Profile must not be shared between concurrently running loops; within
// one loop all hooks run on the loop goroutine.
package simprof

import (
	"fmt"
	rtm "runtime/metrics"
	"time"

	"shardmanager/internal/metrics"
	"shardmanager/internal/sim"
)

// allocsMetric is the runtime/metrics counter used for per-event allocation
// attribution: cumulative heap objects allocated by the process.
const allocsMetric = "/gc/heap/allocs:objects"

// Options configure a Profile.
type Options struct {
	// Allocs enables per-(component, kind) allocation attribution by
	// reading runtime/metrics around every dispatch. It costs roughly a
	// microsecond per event, so keep it off when measuring throughput;
	// whole-run allocs/event is cheap to compute without it.
	Allocs bool
	// Registry, when non-nil, receives kernel queue gauges on every
	// dispatch: sim_event_heap_depth / sim_pending_timers gauges and a
	// sim_event_heap_depth histogram.
	Registry *metrics.Registry
}

// stat accumulates one label's activity.
type stat struct {
	scheduled uint64
	fired     uint64
	cancelled uint64
	wallNS    int64
	allocs    uint64
	firstSim  time.Duration
	lastSim   time.Duration
	seen      bool
}

// touched reports whether the label ever appeared.
func (s *stat) touched() bool { return s.scheduled+s.fired+s.cancelled > 0 }

// Profile implements sim.Profiler. Create one with New, attach it with
// Loop.SetProfiler before scheduling the work to attribute, and render it
// with WriteText/WriteJSON/WriteFolded once the run completes.
type Profile struct {
	opts  Options
	stats []stat // indexed by sim.Label; 0 is the unlabeled bucket
	total stat

	dispatches uint64
	maxHeap    int
	maxLive    int
	sumHeap    uint64

	sample []rtm.Sample

	// cached registry cells, resolved once so dispatch never hits the
	// family map.
	gaugeHeap *metrics.Gauge
	gaugeLive *metrics.Gauge
	histHeap  *metrics.FixedHistogram
}

// DepthBuckets bound the heap-depth histogram: event-queue lengths from an
// idle loop to a million-entity trace.
var DepthBuckets = []float64{10, 100, 1000, 10000, 100000, 1000000}

// New returns an empty profile.
func New(opts Options) *Profile {
	p := &Profile{opts: opts}
	if opts.Allocs {
		p.sample = []rtm.Sample{{Name: allocsMetric}}
	}
	if r := opts.Registry; r != nil {
		p.gaugeHeap = r.Gauge("sim_event_heap_depth")
		p.gaugeLive = r.Gauge("sim_pending_timers")
		p.histHeap = r.Histogram("sim_event_heap_depth_hist", DepthBuckets)
	}
	return p
}

// stat returns the label's accumulator, growing the dense table on demand.
func (p *Profile) stat(lb sim.Label) *stat {
	if int(lb) >= len(p.stats) {
		grown := make([]stat, sim.NumLabels())
		if int(lb) >= len(grown) { // label minted after NumLabels snapshot
			grown = make([]stat, int(lb)+1)
		}
		copy(grown, p.stats)
		p.stats = grown
	}
	return &p.stats[lb]
}

// OnSchedule implements sim.Profiler.
func (p *Profile) OnSchedule(lb sim.Label) {
	p.stat(lb).scheduled++
	p.total.scheduled++
}

// OnCancel implements sim.Profiler.
func (p *Profile) OnCancel(lb sim.Label) {
	p.stat(lb).cancelled++
	p.total.cancelled++
}

// readAllocs returns the cumulative heap-object allocation count.
func (p *Profile) readAllocs() uint64 {
	rtm.Read(p.sample)
	return p.sample[0].Value.Uint64()
}

// Dispatch implements sim.Profiler: it runs fn, attributing its cost to lb.
func (p *Profile) Dispatch(lb sim.Label, now time.Duration, heapLen, live int, fn func()) {
	var a0 uint64
	if p.opts.Allocs {
		a0 = p.readAllocs()
	}
	t0 := time.Now()
	fn()
	wall := int64(time.Since(t0))

	st := p.stat(lb)
	st.fired++
	st.wallNS += wall
	if !st.seen {
		st.firstSim = now
		st.seen = true
	}
	st.lastSim = now
	p.total.fired++
	p.total.wallNS += wall
	if !p.total.seen {
		p.total.firstSim = now
		p.total.seen = true
	}
	p.total.lastSim = now
	if p.opts.Allocs {
		da := p.readAllocs() - a0
		st.allocs += da
		p.total.allocs += da
	}

	p.dispatches++
	if heapLen > p.maxHeap {
		p.maxHeap = heapLen
	}
	if live > p.maxLive {
		p.maxLive = live
	}
	p.sumHeap += uint64(heapLen)
	if p.gaugeHeap != nil {
		p.gaugeHeap.Set(float64(heapLen))
		p.gaugeLive.Set(float64(live))
		p.histHeap.Observe(float64(heapLen))
	}
}

// Events returns the total number of dispatched events.
func (p *Profile) Events() uint64 { return p.total.fired }

// WallNS returns the total wall-clock nanoseconds spent inside callbacks.
func (p *Profile) WallNS() int64 { return p.total.wallNS }

// MaxHeapDepth returns the largest observed post-pop event-heap length.
func (p *Profile) MaxHeapDepth() int { return p.maxHeap }

// AvgHeapDepth returns the mean post-pop event-heap length per dispatch.
func (p *Profile) AvgHeapDepth() float64 {
	if p.dispatches == 0 {
		return 0
	}
	return float64(p.sumHeap) / float64(p.dispatches)
}

// Row is one (component, kind) cost center.
type Row struct {
	Component string        `json:"component"`
	Kind      string        `json:"kind"`
	Scheduled uint64        `json:"scheduled"`
	Fired     uint64        `json:"fired"`
	Cancelled uint64        `json:"cancelled"`
	FirstSim  time.Duration `json:"first_sim_ns"`
	LastSim   time.Duration `json:"last_sim_ns"`
	// Wall-clock attribution; populated in the struct but only rendered
	// when ReportOptions.Wall asks for it.
	WallNS int64  `json:"wall_ns,omitempty"`
	Allocs uint64 `json:"allocs,omitempty"`
}

// share returns the row's fraction of all fired events.
func (r Row) share(total uint64) float64 {
	if total == 0 {
		return 0
	}
	return float64(r.Fired) / float64(total)
}

// name renders the display name of the attribution bucket.
func (r Row) name() (component, kind string) {
	if r.Component == "" && r.Kind == "" {
		return "(unlabeled)", "-"
	}
	return r.Component, r.Kind
}

// Rows returns every touched cost center sorted by (component, kind) — the
// deterministic report order. The unlabeled bucket sorts first (empty
// component).
func (p *Profile) Rows() []Row {
	rows := make([]Row, 0, len(p.stats))
	for lb := range p.stats {
		st := &p.stats[lb]
		if !st.touched() {
			continue
		}
		comp, kind := sim.LabelName(sim.Label(lb))
		rows = append(rows, Row{
			Component: comp, Kind: kind,
			Scheduled: st.scheduled, Fired: st.fired, Cancelled: st.cancelled,
			FirstSim: st.firstSim, LastSim: st.lastSim,
			WallNS: st.wallNS, Allocs: st.allocs,
		})
	}
	sortRowsByName(rows)
	return rows
}

// Top returns the n most expensive cost centers by wall-clock time (ties
// broken by fired count, then name, so the order is total).
func (p *Profile) Top(n int) []Row {
	rows := p.Rows()
	sortRowsByWall(rows)
	if n < len(rows) {
		rows = rows[:n]
	}
	return rows
}

// RenderTop formats the top-n cost centers as the operator table smctl
// status --prof prints.
func (p *Profile) RenderTop(n int) string {
	rows := p.Top(n)
	out := fmt.Sprintf("top %d kernel cost centers (%d events, %.1fms in callbacks):\n",
		len(rows), p.Events(), float64(p.WallNS())/1e6)
	out += fmt.Sprintf("  %-14s %-18s %12s %10s %8s %9s\n",
		"component", "kind", "events", "wall ms", "ns/ev", "share")
	for _, r := range rows {
		comp, kind := r.name()
		nsPerEv := float64(0)
		if r.Fired > 0 {
			nsPerEv = float64(r.WallNS) / float64(r.Fired)
		}
		out += fmt.Sprintf("  %-14s %-18s %12d %10.2f %8.0f %8.2f%%\n",
			comp, kind, r.Fired, float64(r.WallNS)/1e6, nsPerEv, 100*r.share(p.total.fired))
	}
	return out
}
