package simprof

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"shardmanager/internal/metrics"
	"shardmanager/internal/sim"
)

var update = flag.Bool("update", false, "rewrite golden files")

// runFixedWorkload drives a small fully deterministic event mix through a
// profiled loop: periodic ticks, a fan-out burst, a cancelled timer, and an
// unlabeled event.
func runFixedWorkload(p *Profile) {
	l := sim.NewLoop(7)
	l.SetProfiler(p)
	lbTick := sim.LabelFor("golden", "tick")
	lbFan := sim.LabelFor("golden", "fanout")
	lbDead := sim.LabelFor("golden", "dead")

	tk := l.EveryL(time.Second, lbTick, func() {})
	for i := 0; i < 5; i++ {
		d := time.Duration(i+1) * 500 * time.Millisecond
		l.AfterL(d, lbFan, func() {
			for j := 0; j < 3; j++ {
				l.AfterL(time.Duration(j+1)*time.Millisecond, lbFan, func() {})
			}
		})
	}
	l.AfterL(4*time.Second, lbDead, func() {}).Stop()
	l.After(2*time.Second, func() {}) // unlabeled
	l.RunUntil(10 * time.Second)
	tk.Stop()
}

func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	golden := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (run with -update to regenerate): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("output differs from %s (run with -update to regenerate)\ngot:\n%s\nwant:\n%s", golden, got, want)
	}
}

func TestAttributionCounts(t *testing.T) {
	p := New(Options{})
	runFixedWorkload(p)

	rows := p.Rows()
	byName := map[string]Row{}
	for _, r := range rows {
		byName[r.Component+"/"+r.Kind] = r
	}
	// 5 fanout roots + 15 children.
	if r := byName["golden/fanout"]; r.Scheduled != 20 || r.Fired != 20 || r.Cancelled != 0 {
		t.Fatalf("fanout row = %+v", r)
	}
	// 10 ticks fire within the 10s horizon (the tick at 10s is inclusive);
	// each tick schedules the next, and RunUntil leaves the 11th pending
	// until tk.Stop cancels it.
	if r := byName["golden/tick"]; r.Fired != 10 || r.Cancelled != 1 {
		t.Fatalf("tick row = %+v", r)
	}
	if r := byName["golden/dead"]; r.Scheduled != 1 || r.Fired != 0 || r.Cancelled != 1 {
		t.Fatalf("dead row = %+v", r)
	}
	if r := byName["/"]; r.Fired != 1 {
		t.Fatalf("unlabeled row = %+v", r)
	}
	if p.Events() != 31 {
		t.Fatalf("Events() = %d, want 31", p.Events())
	}
	// Wall time accrues on every dispatch even for empty callbacks.
	if p.WallNS() <= 0 {
		t.Fatalf("WallNS() = %d, want > 0", p.WallNS())
	}
	if p.MaxHeapDepth() <= 0 || p.AvgHeapDepth() <= 0 {
		t.Fatalf("heap stats = max %d avg %f, want > 0", p.MaxHeapDepth(), p.AvgHeapDepth())
	}
}

func TestGoldenReports(t *testing.T) {
	p := New(Options{})
	runFixedWorkload(p)
	var txt, js, folded bytes.Buffer
	if err := p.WriteText(&txt, ReportOptions{}); err != nil {
		t.Fatal(err)
	}
	if err := p.WriteJSON(&js, ReportOptions{}); err != nil {
		t.Fatal(err)
	}
	if err := p.WriteFolded(&folded, ReportOptions{}); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "fixed.txt", txt.Bytes())
	checkGolden(t, "fixed.json", js.Bytes())
	checkGolden(t, "fixed.folded", folded.Bytes())
}

// TestTwoRunsByteIdentical is the package-level determinism bar: two fresh
// profiles over the same seeded workload render identical deterministic
// reports (the experiment-level test repeats this on full deployments).
func TestTwoRunsByteIdentical(t *testing.T) {
	render := func() (string, string, string) {
		p := New(Options{})
		runFixedWorkload(p)
		var txt, js, folded bytes.Buffer
		if err := p.WriteText(&txt, ReportOptions{}); err != nil {
			t.Fatal(err)
		}
		if err := p.WriteJSON(&js, ReportOptions{}); err != nil {
			t.Fatal(err)
		}
		if err := p.WriteFolded(&folded, ReportOptions{}); err != nil {
			t.Fatal(err)
		}
		return txt.String(), js.String(), folded.String()
	}
	t1, j1, f1 := render()
	t2, j2, f2 := render()
	if t1 != t2 {
		t.Errorf("text reports differ:\n%s\nvs:\n%s", t1, t2)
	}
	if j1 != j2 {
		t.Errorf("JSON reports differ:\n%s\nvs:\n%s", j1, j2)
	}
	if f1 != f2 {
		t.Errorf("folded outputs differ:\n%s\nvs:\n%s", f1, f2)
	}
}

func TestWallReportIncludesTimingColumns(t *testing.T) {
	p := New(Options{})
	runFixedWorkload(p)
	var buf bytes.Buffer
	if err := p.WriteText(&buf, ReportOptions{Wall: true}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "wall ms") {
		t.Fatalf("wall report missing timing columns:\n%s", buf.String())
	}
	top := p.Top(2)
	if len(top) != 2 {
		t.Fatalf("Top(2) returned %d rows", len(top))
	}
	if top[0].WallNS < top[1].WallNS {
		t.Fatalf("Top not sorted by wall: %v", top)
	}
	if s := p.RenderTop(3); !strings.Contains(s, "cost centers") {
		t.Fatalf("RenderTop output unexpected:\n%s", s)
	}
}

func TestAllocAttribution(t *testing.T) {
	p := New(Options{Allocs: true})
	l := sim.NewLoop(1)
	l.SetProfiler(p)
	lb := sim.LabelFor("alloctest", "make")
	var sink [][]byte
	l.AfterL(time.Second, lb, func() {
		for i := 0; i < 100; i++ {
			sink = append(sink, make([]byte, 1024))
		}
	})
	l.Run()
	_ = sink
	var row Row
	for _, r := range p.Rows() {
		if r.Component == "alloctest" {
			row = r
		}
	}
	if row.Allocs < 100 {
		t.Fatalf("allocating callback attributed %d allocs, want >= 100", row.Allocs)
	}
}

func TestRegistryGaugeSampling(t *testing.T) {
	reg := metrics.NewRegistry()
	p := New(Options{Registry: reg})
	l := sim.NewLoop(1)
	l.SetProfiler(p)
	lb := sim.LabelFor("gaugetest", "tick")
	for i := 0; i < 10; i++ {
		l.AfterL(time.Duration(i+1)*time.Second, lb, func() {})
	}
	l.Run()
	if h := reg.Histogram("sim_event_heap_depth_hist", nil); h.Count() != 10 {
		t.Fatalf("heap-depth histogram observed %d dispatches, want 10", h.Count())
	}
	// The last dispatch sees an empty heap and no live timers.
	if v := reg.Gauge("sim_event_heap_depth").Value(); v != 0 {
		t.Fatalf("final heap-depth gauge = %v, want 0", v)
	}
	if v := reg.Gauge("sim_pending_timers").Value(); v != 0 {
		t.Fatalf("final pending-timers gauge = %v, want 0", v)
	}
}
