package solver

import (
	"fmt"
	"testing"

	"shardmanager/internal/sim"
)

// scaleProblem builds a ZippyDB-like problem (mirroring the experiments
// package's workload, rebuilt locally to keep the solver package
// dependency-free): heterogeneous buckets in 8 groups, 20x shard-load
// spread, capacity constraints plus utilization-band balance goals, and a
// random initial assignment.
func scaleProblem(rng *sim.RNG, buckets, entities int) *Problem {
	p := NewProblem([]string{"storage", "cpu", "shard_count"})
	for i := 0; i < buckets; i++ {
		storageCap := 1000 * (1 + 0.2*rng.Float64())
		p.AddBucket(Bucket{
			Name:     fmt.Sprintf("srv%05d", i),
			Capacity: []float64{storageCap, 100, 1000},
			Group:    fmt.Sprintf("g%d", i%8),
		})
	}
	baseStorage := float64(buckets) * 1100 * 0.55 / float64(entities)
	baseCPU := float64(buckets) * 100 * 0.55 / float64(entities)
	for i := 0; i < entities; i++ {
		skew := 0.1 + 1.9*rng.Float64()
		p.AddEntity(Entity{
			Name:    fmt.Sprintf("sh%06d", i),
			Load:    []float64{baseStorage * skew, baseCPU * skew, 1},
			Bucket:  BucketID(rng.Intn(buckets)),
			Movable: true,
		})
	}
	for _, m := range []string{"storage", "cpu"} {
		p.AddConstraint(CapacitySpec{Metric: m})
		p.AddBalanceGoal(BalanceSpec{Metric: m, UtilCap: 0.9, MaxDiff: 0.1, Weight: 1})
	}
	p.AddBalanceGoal(BalanceSpec{Metric: "shard_count", MaxDiff: 0.15, Weight: 0.5})
	return p
}

// BenchmarkSolveScale is the tentpole perf target: ~100k entities on 5k
// buckets under default options. The pre-fast-path solver took ~756ms per
// solve on this workload; the acceptance bar is >=5x faster.
func BenchmarkSolveScale(b *testing.B) {
	const buckets, entities = 5000, 100000
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		p := scaleProblem(sim.NewRNG(1), buckets, entities)
		opt := DefaultOptions()
		opt.Seed = 1
		opt.Sampler = GroupedSampler(p, 1)
		b.StartTimer()
		res := Solve(p, opt)
		if res.Final.Total() != 0 {
			b.Fatalf("solve left %d violations", res.Final.Total())
		}
		b.ReportMetric(float64(res.Evaluated), "evals/op")
	}
}

// BenchmarkSolveScaleParallel runs the same workload with the deterministic
// parallel evaluator (results are byte-identical to serial; see
// TestParallelMatchesSerial).
func BenchmarkSolveScaleParallel(b *testing.B) {
	const buckets, entities = 5000, 100000
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		p := scaleProblem(sim.NewRNG(1), buckets, entities)
		opt := DefaultOptions()
		opt.Seed = 1
		opt.Parallel = 4
		opt.Sampler = GroupedSampler(p, 1)
		b.StartTimer()
		res := Solve(p, opt)
		if res.Final.Total() != 0 {
			b.Fatalf("solve left %d violations", res.Final.Total())
		}
	}
}

// BenchmarkMoveDelta measures the hot loop in isolation; the fast path's
// contract is zero allocations per evaluation (see TestMoveDeltaAllocFree).
func BenchmarkMoveDelta(b *testing.B) {
	p := scaleProblem(sim.NewRNG(1), 500, 10000)
	st := newState(p)
	rng := sim.NewRNG(2)
	n := len(p.Entities)
	nb := len(p.Buckets)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st.moveDelta(EntityID(rng.Intn(n)), BucketID(rng.Intn(nb)))
	}
}
