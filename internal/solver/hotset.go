package solver

// hotSet tracks every bucket's local penalty in a max-heap so Phase 2 can
// pull the hottest bucket in O(log B) instead of rescanning all buckets each
// round. Penalties are maintained incrementally by state.apply; the solve
// loop freezes buckets it failed to improve and unfreezes everything at
// epoch boundaries.
//
// Ties break toward the lower bucket ID so the pull order is deterministic.
type hotSet struct {
	// pen[b] is bucket b's current penalty (maintained incrementally; small
	// float drift versus a from-scratch bucketPenalty is expected and
	// harmless — it only orders the search).
	pen []float64
	// heap holds the unfrozen bucket IDs in max-heap order.
	heap []int32
	// pos[b] is b's index in heap, or -1 while frozen.
	pos []int32
	// tentative marks a speculative apply/rollback window (swap probes).
	// While set, add leaves frozen buckets frozen and records them in
	// touched instead of re-pushing them: a probe that is rolled back
	// restores their penalties, so nothing actually changed and unfreezing
	// them would livelock the freeze bookkeeping (probe on bucket A thaws
	// frozen bucket B, probe on B thaws A, forever, with no accepted moves).
	tentative bool
	touched   []int32
}

func newHotSet(n int) *hotSet {
	h := &hotSet{
		pen:  make([]float64, n),
		heap: make([]int32, n),
		pos:  make([]int32, n),
	}
	for i := range h.heap {
		h.heap[i] = int32(i)
		h.pos[i] = int32(i)
	}
	return h
}

// init heapifies after the caller has filled pen directly (newState does
// this once with full bucketPenalty recomputations).
func (h *hotSet) init() {
	for i := len(h.heap)/2 - 1; i >= 0; i-- {
		h.siftDown(i)
	}
}

func (h *hotSet) less(a, b int32) bool {
	if h.pen[a] != h.pen[b] {
		return h.pen[a] > h.pen[b]
	}
	return a < b
}

func (h *hotSet) swap(i, j int) {
	h.heap[i], h.heap[j] = h.heap[j], h.heap[i]
	h.pos[h.heap[i]] = int32(i)
	h.pos[h.heap[j]] = int32(j)
}

func (h *hotSet) siftUp(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(h.heap[i], h.heap[parent]) {
			return
		}
		h.swap(i, parent)
		i = parent
	}
}

func (h *hotSet) siftDown(i int) {
	n := len(h.heap)
	for {
		l, r := 2*i+1, 2*i+2
		best := i
		if l < n && h.less(h.heap[l], h.heap[best]) {
			best = l
		}
		if r < n && h.less(h.heap[r], h.heap[best]) {
			best = r
		}
		if best == i {
			return
		}
		h.swap(i, best)
		i = best
	}
}

// top returns the hottest unfrozen bucket and its penalty, or (-1, 0) when
// every bucket is frozen.
func (h *hotSet) top() (BucketID, float64) {
	if len(h.heap) == 0 {
		return -1, 0
	}
	b := h.heap[0]
	return BucketID(b), h.pen[b]
}

// add shifts bucket b's penalty by delta and restores heap order. A frozen
// bucket whose penalty changes is unfrozen: its situation changed, so it
// deserves another look.
func (h *hotSet) add(b BucketID, delta float64) {
	h.pen[b] += delta
	if h.pos[b] < 0 {
		if h.tentative {
			h.touched = append(h.touched, int32(b))
			return
		}
		h.push(int32(b))
		return
	}
	i := int(h.pos[b])
	h.siftUp(i)
	h.siftDown(int(h.pos[b]))
}

func (h *hotSet) push(b int32) {
	h.pos[b] = int32(len(h.heap))
	h.heap = append(h.heap, b)
	h.siftUp(len(h.heap) - 1)
}

// freeze removes b from the heap until add changes its penalty or
// unfreezeAll runs.
func (h *hotSet) freeze(b BucketID) {
	i := int(h.pos[b])
	if i < 0 {
		return
	}
	last := len(h.heap) - 1
	h.swap(i, last)
	h.heap = h.heap[:last]
	h.pos[b] = -1
	if i < last {
		h.siftDown(i)
		h.siftUp(i)
	}
}

// beginTentative opens a speculative window: penalty changes on frozen
// buckets are recorded but do not unfreeze them.
func (h *hotSet) beginTentative() {
	h.tentative = true
	h.touched = h.touched[:0]
}

// commitTentative closes the window keeping its changes: frozen buckets
// whose penalties really changed are unfrozen now. Duplicates in touched are
// harmless — push is skipped once pos is set.
func (h *hotSet) commitTentative() {
	h.tentative = false
	for _, b := range h.touched {
		if h.pos[b] < 0 {
			h.push(b)
		}
	}
	h.touched = h.touched[:0]
}

// abortTentative closes the window after a rollback: penalties were
// restored, so the recorded touches are simply dropped.
func (h *hotSet) abortTentative() {
	h.tentative = false
	h.touched = h.touched[:0]
}

// unfreezeAll returns every frozen bucket to the heap (epoch boundary).
func (h *hotSet) unfreezeAll() {
	for b := range h.pos {
		if h.pos[b] < 0 {
			h.push(int32(b))
		}
	}
}
