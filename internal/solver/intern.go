package solver

import "fmt"

// DomainTable interns (bucket, scope) -> domain strings into dense int IDs
// so the solver's hot loop indexes flat slices instead of hashing strings.
// Scopes are interned on demand the first time a spec references them; the
// table can be shared across Problems with identical bucket sets (the
// allocator reuses one table across its goal batches, see
// Problem.AdoptDomainTable).
type DomainTable struct {
	scopes map[string]*scopeDomains
}

// scopeDomains is the interned view of one scope: every bucket's domain ID,
// the reverse ID -> name mapping, and the member buckets of each domain.
type scopeDomains struct {
	scope string
	// bucketDom[b] is the dense domain ID of bucket b at this scope.
	bucketDom []int32
	// names[d] is the domain string of ID d.
	names []string
	// index maps a domain string back to its ID.
	index map[string]int32
	// members[d] lists the buckets in domain d.
	members [][]int32
}

// numDomains returns the number of distinct domains at this scope.
func (sd *scopeDomains) numDomains() int { return len(sd.names) }

// domains returns the interned view of scope, building it on first use.
// Buckets lacking a Props entry for the scope panic with the same message as
// the string-keyed path did.
func (t *DomainTable) domains(p *Problem, scope string) *scopeDomains {
	if sd, ok := t.scopes[scope]; ok {
		if len(sd.bucketDom) != len(p.Buckets) {
			panic(fmt.Sprintf("solver: domain table built for %d buckets used with %d", len(sd.bucketDom), len(p.Buckets)))
		}
		return sd
	}
	sd := &scopeDomains{
		scope:     scope,
		bucketDom: make([]int32, len(p.Buckets)),
		index:     make(map[string]int32),
	}
	for b := range p.Buckets {
		name := p.domainOf(BucketID(b), scope)
		id, ok := sd.index[name]
		if !ok {
			id = int32(len(sd.names))
			sd.index[name] = id
			sd.names = append(sd.names, name)
			sd.members = append(sd.members, nil)
		}
		sd.bucketDom[b] = id
		sd.members[id] = append(sd.members[id], int32(b))
	}
	t.scopes[scope] = sd
	return sd
}

// DomainTable returns the problem's interning table, creating an empty one
// on first use. Scope entries are populated lazily by newState.
func (p *Problem) DomainTable() *DomainTable {
	if p.domTable == nil {
		p.domTable = &DomainTable{scopes: make(map[string]*scopeDomains)}
	}
	return p.domTable
}

// AdoptDomainTable installs a table built by another Problem with an
// identical bucket set (same names, props, and order). The allocator uses it
// to intern domains once and share them across its per-batch problem
// rebuilds. Panics if the table was populated for a different bucket count.
func (p *Problem) AdoptDomainTable(t *DomainTable) {
	for _, sd := range t.scopes {
		if len(sd.bucketDom) != len(p.Buckets) {
			panic(fmt.Sprintf("solver: adopted domain table covers %d buckets, problem has %d", len(sd.bucketDom), len(p.Buckets)))
		}
	}
	p.domTable = t
}

// ekey packs a (group ID, domain ID) pair into one map key; integer keys
// keep exclusion/conflict count lookups allocation-free in the hot loop.
func ekey(group, dom int32) uint64 {
	return uint64(uint32(group))<<32 | uint64(uint32(dom))
}

// internGroups converts a spec's Groups map into a dense per-entity group ID
// slice (-1 = entity not in the spec). IDs are assigned in entity order so
// they are deterministic.
func internGroups(n int, groups map[EntityID]string) (entGroup []int32, numGroups int) {
	entGroup = make([]int32, n)
	idx := make(map[string]int32, len(groups))
	for e := 0; e < n; e++ {
		g, ok := groups[EntityID(e)]
		if !ok {
			entGroup[e] = -1
			continue
		}
		id, ok := idx[g]
		if !ok {
			id = int32(len(idx))
			idx[g] = id
		}
		entGroup[e] = id
	}
	return entGroup, len(idx)
}
