// Package solver implements a generic constraint solver for assignment
// problems, modeled after ReBalancer (§5.2): callers describe entities
// (shard replicas), buckets (servers), hard capacity constraints, and
// weighted soft goals through a high-level API, and the solver improves the
// assignment with local search (§5.3).
//
// The solver is domain-independent: it knows nothing about shards, regions,
// or load balancing. Shard Manager's allocator (package allocator)
// translates its placement problem into this vocabulary and supplies domain
// knowledge — grouped target sampling, big-entities-first ordering, and
// goal batching — that the paper shows is essential to make local search
// converge quickly (Fig 22).
//
// Incremental evaluation: the paper describes representing the objective as
// a tree of variables so that evaluating a move touches only O(log n)
// nodes. We achieve the same asymptotics with per-spec aggregate state
// (per-bucket/per-domain load sums and per-group domain counts) updated in
// O(1) per move; evaluating a candidate move never rescans entities.
package solver

import (
	"fmt"
	"math"
)

// EntityID indexes an entity within a Problem.
type EntityID int

// BucketID indexes a bucket within a Problem. Unassigned is the sentinel
// for entities with no current placement (e.g. replicas of a failed server).
type BucketID int

// Unassigned marks an entity without a bucket.
const Unassigned BucketID = -1

// ScopeBucket is the Scope value meaning "each bucket individually"; any
// other scope string refers to a bucket property (e.g. "region", "rack").
const ScopeBucket = ""

// unassignedPenalty dominates every soft goal so that placing unassigned
// entities is always the most urgent improvement.
const unassignedPenalty = 1e12

// Entity is one assignable unit (a shard replica).
type Entity struct {
	Name string
	// Load per metric, indexed like Problem.Metrics.
	Load []float64
	// Bucket is the current assignment (Unassigned if none).
	Bucket BucketID
	// Movable entities may be reassigned; pinned ones contribute load
	// but never move.
	Movable bool
}

// Bucket is one assignment target (a server).
type Bucket struct {
	Name string
	// Capacity per metric, indexed like Problem.Metrics.
	Capacity []float64
	// Props maps a scope name to this bucket's domain at that scope,
	// e.g. {"region": "frc", "rack": "frc/dc0/rack01"}.
	Props map[string]string
	// Group tags the bucket for grouped candidate sampling (set by the
	// caller; typically the region or hardware class).
	Group string
	// Draining marks buckets that should shed entities (pending
	// maintenance or software upgrade, §5.1 soft goal 3).
	Draining bool
}

// CapacitySpec is a hard constraint: for each aggregation key at Scope, the
// sum of entity loads for Metric must not exceed the key's capacity (the sum
// of its buckets' capacities). Mirrors addConstraint(CapacitySpec{...}) in
// Fig 13.
type CapacitySpec struct {
	Metric string
	Scope  string
}

// BalanceSpec is a soft goal: keep each aggregation key's utilization of
// Metric under UtilCap, and within MaxDiff of the mean utilization
// (§5.1 soft goals 4-6). Mirrors addGoal(BalanceSpec{...}) in Fig 13.
type BalanceSpec struct {
	Metric string
	Scope  string
	// UtilCap is the absolute utilization threshold (e.g. 0.9); <= 0
	// disables it.
	UtilCap float64
	// MaxDiff is the allowed deviation above mean utilization (e.g.
	// 0.1); <= 0 disables it.
	MaxDiff float64
	Weight  float64
}

// AffinityGoal is a soft goal: one entity prefers buckets whose domain at
// Scope equals Domain, with the given weight (region preference, §5.1 soft
// goal 1; Fig 13 statements 5-6).
type AffinityGoal struct {
	Scope  string
	Entity EntityID
	Domain string
	Weight float64
}

// ExclusionSpec is a soft goal: entities sharing a group key should occupy
// distinct domains at Scope (spread of replicas, §5.1 soft goal 2; Fig 13
// statements 7-8). Each colocated extra entity costs Weight.
type ExclusionSpec struct {
	Scope  string
	Groups map[EntityID]string
	Weight float64
}

// Problem is a mutable assignment problem under construction. Build it with
// the Add* methods, then call Solve.
type Problem struct {
	Metrics []string
	midx    map[string]int

	Entities []Entity
	Buckets  []Bucket

	capacitySpecs  []CapacitySpec
	balanceSpecs   []BalanceSpec
	affinityGoals  map[EntityID][]AffinityGoal
	exclusionSpecs []ExclusionSpec
	conflictSpecs  []ExclusionSpec
	drainWeight    float64

	// domTable interns (bucket, scope) -> domain strings; built lazily,
	// shareable across problems with identical buckets (see intern.go).
	domTable *DomainTable
}

// NewProblem creates a problem with the given load metrics.
func NewProblem(metrics []string) *Problem {
	if len(metrics) == 0 {
		panic("solver: NewProblem with no metrics")
	}
	midx := make(map[string]int, len(metrics))
	for i, m := range metrics {
		if _, dup := midx[m]; dup {
			panic(fmt.Sprintf("solver: duplicate metric %q", m))
		}
		midx[m] = i
	}
	return &Problem{
		Metrics:       append([]string(nil), metrics...),
		midx:          midx,
		affinityGoals: make(map[EntityID][]AffinityGoal),
	}
}

// MetricIndex returns the index of a metric name.
func (p *Problem) MetricIndex(metric string) int {
	i, ok := p.midx[metric]
	if !ok {
		panic(fmt.Sprintf("solver: unknown metric %q", metric))
	}
	return i
}

// AddBucket registers a bucket and returns its ID.
func (p *Problem) AddBucket(b Bucket) BucketID {
	if len(b.Capacity) != len(p.Metrics) {
		panic(fmt.Sprintf("solver: bucket %q capacity has %d metrics, want %d", b.Name, len(b.Capacity), len(p.Metrics)))
	}
	p.Buckets = append(p.Buckets, b)
	return BucketID(len(p.Buckets) - 1)
}

// AddEntity registers an entity and returns its ID.
func (p *Problem) AddEntity(e Entity) EntityID {
	if len(e.Load) != len(p.Metrics) {
		panic(fmt.Sprintf("solver: entity %q load has %d metrics, want %d", e.Name, len(e.Load), len(p.Metrics)))
	}
	if e.Bucket != Unassigned && (e.Bucket < 0 || int(e.Bucket) >= len(p.Buckets)) {
		panic(fmt.Sprintf("solver: entity %q assigned to unknown bucket %d", e.Name, e.Bucket))
	}
	p.Entities = append(p.Entities, e)
	return EntityID(len(p.Entities) - 1)
}

// AddConstraint registers a hard capacity constraint.
func (p *Problem) AddConstraint(c CapacitySpec) {
	p.MetricIndex(c.Metric)
	p.capacitySpecs = append(p.capacitySpecs, c)
}

// AddBalanceGoal registers a soft balance goal.
func (p *Problem) AddBalanceGoal(b BalanceSpec) {
	p.MetricIndex(b.Metric)
	if b.Weight <= 0 {
		panic("solver: balance goal needs positive weight")
	}
	if b.UtilCap <= 0 && b.MaxDiff <= 0 {
		panic("solver: balance goal needs UtilCap or MaxDiff")
	}
	p.balanceSpecs = append(p.balanceSpecs, b)
}

// AddAffinityGoal registers a soft per-entity domain preference.
func (p *Problem) AddAffinityGoal(g AffinityGoal) {
	if g.Weight <= 0 {
		panic("solver: affinity goal needs positive weight")
	}
	if g.Entity < 0 || int(g.Entity) >= len(p.Entities) {
		panic(fmt.Sprintf("solver: affinity for unknown entity %d", g.Entity))
	}
	p.affinityGoals[g.Entity] = append(p.affinityGoals[g.Entity], g)
}

// AddExclusionGoal registers a soft spread goal.
func (p *Problem) AddExclusionGoal(s ExclusionSpec) {
	if s.Weight <= 0 {
		panic("solver: exclusion goal needs positive weight")
	}
	p.exclusionSpecs = append(p.exclusionSpecs, s)
}

// AddConflict registers a HARD exclusion: no two entities of the same group
// may occupy the same domain at Scope. Moves that would colocate are
// infeasible. Shard Manager uses it at server scope — two replicas of one
// shard must never share a server. Weight is ignored.
func (p *Problem) AddConflict(s ExclusionSpec) {
	p.conflictSpecs = append(p.conflictSpecs, s)
}

// AddDrainGoal penalizes every entity on a Draining bucket with weight w.
func (p *Problem) AddDrainGoal(w float64) {
	if w <= 0 {
		panic("solver: drain goal needs positive weight")
	}
	p.drainWeight = w
}

// domainOf returns the aggregation key of bucket b at scope: the bucket's
// own index for ScopeBucket, else its Props value.
func (p *Problem) domainOf(b BucketID, scope string) string {
	if scope == ScopeBucket {
		return p.Buckets[b].Name
	}
	d, ok := p.Buckets[b].Props[scope]
	if !ok {
		panic(fmt.Sprintf("solver: bucket %q lacks scope %q", p.Buckets[b].Name, scope))
	}
	return d
}

// ---------------------------------------------------------------------------
// Incremental evaluation state.
//
// All (bucket, scope) -> domain strings are interned into dense int IDs at
// newState time (see intern.go): the hot path indexes flat slices and
// integer-keyed maps instead of concatenating and hashing strings. Capacity
// and balance specs sharing a (metric, scope) pair are merged into one
// specState so their shared load/capacity aggregates are maintained once.

// balParams is one merged balance goal on a specState.
type balParams struct {
	utilCap float64
	maxDiff float64
	weight  float64
}

// specState holds the per-domain load/capacity aggregates for one
// (metric, scope) pair, serving every capacity and balance spec on it.
type specState struct {
	scope string
	midx  int
	dom   *scopeDomains
	// nHard counts merged hard capacity specs on this (metric, scope);
	// >0 gates move feasibility, and multiplies the overflow penalty so
	// duplicate AddConstraint calls keep their historical weight.
	nHard int
	bals  []balParams
	load  []float64 // per domain ID
	cap   []float64 // per domain ID
	// meanUtil is the mean utilization over domains with capacity, fixed
	// at state-build time (moves conserve total load). Unassigned load is
	// included: once placed it pushes utilization up, and the target must
	// account for it or the solver would chase a moving average.
	meanUtil float64
}

// capPenalty treats hard-constraint overflow as a very large soft penalty so
// local search can repair infeasible initial states while the feasibility
// check prevents creating new overflow.
func (sp *specState) capPenalty(d int32, load float64) float64 {
	if sp.nHard == 0 {
		return 0
	}
	if c := sp.cap[d]; load > c {
		return float64(sp.nHard) * 1e6 * (load - c)
	}
	return 0
}

// balPenalty sums the merged balance goals' penalties for one domain given
// its load. Penalty is measured in capacity-weighted overload so that moving
// a large entity off an overloaded domain helps proportionally.
func (sp *specState) balPenalty(d int32, load float64) float64 {
	var pen float64
	c := sp.cap[d]
	for i := range sp.bals {
		b := &sp.bals[i]
		if c <= 0 {
			// Load on a zero-capacity domain is maximally penalized.
			if load > 0 {
				pen += b.weight * load
			}
			continue
		}
		u := load / c
		var over float64
		if b.utilCap > 0 && u > b.utilCap {
			over += (u - b.utilCap) * c
		}
		if b.maxDiff > 0 && u > sp.meanUtil+b.maxDiff {
			over += (u - sp.meanUtil - b.maxDiff) * c
		}
		pen += b.weight * over
	}
	return pen
}

// domPenalty is the domain's total capacity+balance penalty at the given load.
func (sp *specState) domPenalty(d int32, load float64) float64 {
	return sp.capPenalty(d, load) + sp.balPenalty(d, load)
}

// exclState is one soft exclusion spec with interned groups and domains.
type exclState struct {
	dom      *scopeDomains
	entGroup []int32 // entity -> group ID, -1 if not in the spec
	weight   float64
	// members[ekey(g, d)] lists the spec's entities of group g currently
	// in domain d; the member list (not just a count) lets apply credit
	// the exact buckets whose penalty changes on a boundary crossing.
	members map[uint64][]EntityID
}

// confState is one hard conflict spec with interned groups and domains.
type confState struct {
	dom      *scopeDomains
	entGroup []int32
	counts   map[uint64]int32
}

// affTerm is one interned affinity goal of an entity: penalty weight applies
// whenever the entity's bucket is outside domain domID at the goal's scope.
type affTerm struct {
	bucketDom []int32 // the scope's bucket -> domain mapping
	domID     int32   // preferred domain; -1 if no bucket is in it
	weight    float64
}

// state is the solver's incremental view of a problem.
type state struct {
	p *Problem
	// assignment[e] is the current bucket of entity e.
	assignment []BucketID

	specs []specState
	excls []exclState
	confs []confState

	// aff[e] lists entity e's interned affinity terms (nil for most).
	aff [][]affTerm
	// drainPen[b] is the per-entity drain penalty of bucket b (0 or the
	// problem's drain weight).
	drainPen []float64

	// Per-bucket entity sets, maintained for neighborhood generation.
	byBucket [][]EntityID

	// bucketLoad[b][m] is the total load of metric m on bucket b,
	// regardless of spec scopes; samplers use it to prefer cold targets.
	bucketLoad [][]float64

	unassigned map[EntityID]struct{}

	// hot tracks every bucket's penalty incrementally (see hotset.go);
	// apply keeps it in sync with the aggregates above.
	hot *hotSet

	// sigID[e] interns Problem.equivalenceSignature; built lazily by
	// ensureSigs (loads and goals are immutable, so never invalidated).
	sigID  []int32
	numSig int

	// scratch backs the allocation-free public moveDelta.
	scratch prepared
}

// newState builds the incremental state from the problem's current
// assignment.
func newState(p *Problem) *state {
	s := &state{
		p:          p,
		assignment: make([]BucketID, len(p.Entities)),
		byBucket:   make([][]EntityID, len(p.Buckets)),
		unassigned: make(map[EntityID]struct{}),
	}
	s.bucketLoad = make([][]float64, len(p.Buckets))
	for b := range s.bucketLoad {
		s.bucketLoad[b] = make([]float64, len(p.Metrics))
	}
	for i := range p.Entities {
		s.assignment[i] = p.Entities[i].Bucket
		if p.Entities[i].Bucket == Unassigned {
			s.unassigned[EntityID(i)] = struct{}{}
		} else {
			s.byBucket[p.Entities[i].Bucket] = append(s.byBucket[p.Entities[i].Bucket], EntityID(i))
			for m, l := range p.Entities[i].Load {
				s.bucketLoad[p.Entities[i].Bucket][m] += l
			}
		}
	}

	table := p.DomainTable()

	// Merge capacity and balance specs by (metric, scope).
	type specKey struct {
		midx  int
		scope string
	}
	specIdx := make(map[specKey]int)
	getSpec := func(metric, scope string) *specState {
		k := specKey{p.MetricIndex(metric), scope}
		si, ok := specIdx[k]
		if !ok {
			si = len(s.specs)
			specIdx[k] = si
			dom := table.domains(p, scope)
			sp := specState{
				scope: scope,
				midx:  k.midx,
				dom:   dom,
				load:  make([]float64, dom.numDomains()),
				cap:   make([]float64, dom.numDomains()),
			}
			for b := range p.Buckets {
				sp.cap[dom.bucketDom[b]] += p.Buckets[b].Capacity[sp.midx]
			}
			for e := range p.Entities {
				if s.assignment[e] == Unassigned {
					continue
				}
				sp.load[dom.bucketDom[s.assignment[e]]] += p.Entities[e].Load[sp.midx]
			}
			var totLoad, totCap float64
			for d := range sp.cap {
				totCap += sp.cap[d]
				totLoad += sp.load[d]
			}
			for e := range s.unassigned {
				totLoad += p.Entities[e].Load[sp.midx]
			}
			if totCap > 0 {
				sp.meanUtil = totLoad / totCap
			}
			s.specs = append(s.specs, sp)
		}
		return &s.specs[si]
	}
	for _, c := range p.capacitySpecs {
		getSpec(c.Metric, c.Scope).nHard++
	}
	for _, b := range p.balanceSpecs {
		sp := getSpec(b.Metric, b.Scope)
		sp.bals = append(sp.bals, balParams{utilCap: b.UtilCap, maxDiff: b.MaxDiff, weight: b.Weight})
	}

	for _, ex := range p.exclusionSpecs {
		dom := table.domains(p, ex.Scope)
		entGroup, _ := internGroups(len(p.Entities), ex.Groups)
		xs := exclState{
			dom:      dom,
			entGroup: entGroup,
			weight:   ex.Weight,
			members:  make(map[uint64][]EntityID, len(ex.Groups)),
		}
		for e := range p.Entities {
			g := entGroup[e]
			if g < 0 || s.assignment[e] == Unassigned {
				continue
			}
			k := ekey(g, dom.bucketDom[s.assignment[e]])
			xs.members[k] = append(xs.members[k], EntityID(e))
		}
		s.excls = append(s.excls, xs)
	}
	for _, cf := range p.conflictSpecs {
		dom := table.domains(p, cf.Scope)
		entGroup, _ := internGroups(len(p.Entities), cf.Groups)
		cs := confState{
			dom:      dom,
			entGroup: entGroup,
			counts:   make(map[uint64]int32, len(cf.Groups)),
		}
		for e := range p.Entities {
			g := entGroup[e]
			if g < 0 || s.assignment[e] == Unassigned {
				continue
			}
			cs.counts[ekey(g, dom.bucketDom[s.assignment[e]])]++
		}
		s.confs = append(s.confs, cs)
	}

	s.aff = make([][]affTerm, len(p.Entities))
	for e, goals := range p.affinityGoals {
		terms := make([]affTerm, 0, len(goals))
		for _, g := range goals {
			dom := table.domains(p, g.Scope)
			domID, ok := dom.index[g.Domain]
			if !ok {
				domID = -1 // no bucket is in the preferred domain
			}
			terms = append(terms, affTerm{bucketDom: dom.bucketDom, domID: domID, weight: g.Weight})
		}
		s.aff[e] = terms
	}
	s.drainPen = make([]float64, len(p.Buckets))
	if p.drainWeight > 0 {
		for b := range p.Buckets {
			if p.Buckets[b].Draining {
				s.drainPen[b] = p.drainWeight
			}
		}
	}

	s.hot = newHotSet(len(p.Buckets))
	for b := range p.Buckets {
		s.hot.pen[b] = s.bucketPenalty(BucketID(b))
	}
	s.hot.init()

	s.scratch = newPrepared(s)
	return s
}

// affinityPenalty returns the affinity penalty of entity e sitting on bucket b.
func (s *state) affinityPenalty(e EntityID, b BucketID) float64 {
	terms := s.aff[e]
	if len(terms) == 0 {
		return 0
	}
	var pen float64
	for i := range terms {
		t := &terms[i]
		if t.bucketDom[b] != t.domID {
			pen += t.weight
		}
	}
	return pen
}

// drainPenalty returns the penalty of an entity sitting on bucket b.
func (s *state) drainPenalty(b BucketID) float64 { return s.drainPen[b] }

// prepared caches the from-side of a candidate move for one entity: loads,
// source domains, and the penalty deltas of leaving them. Preparing once and
// then calling evalTarget per sampled target avoids recomputing the source
// side for every (entity, target) pair, and makes target evaluation a pure
// read — the parallel mode prepares serially and fans evalTarget out.
type prepared struct {
	e    EntityID
	from BucketID
	// base is the target-independent delta: leaving the source bucket's
	// affinity/drain penalties, or -unassignedPenalty when unplaced.
	base float64
	// Per merged spec (parallel to state.specs):
	load      []float64 // entity load on the spec's metric
	fromDom   []int32   // source domain, -1 when unassigned
	fromDelta []float64 // penalty delta of the source domain losing load

	// Per conflict spec (parallel to state.confs):
	confGid     []int32
	confFromDom []int32

	// Per exclusion spec (parallel to state.excls):
	exGid       []int32
	exFromDom   []int32
	exFromDelta []float64 // -weight when leaving a crowded domain
}

func newPrepared(s *state) prepared {
	return prepared{
		load:        make([]float64, len(s.specs)),
		fromDom:     make([]int32, len(s.specs)),
		fromDelta:   make([]float64, len(s.specs)),
		confGid:     make([]int32, len(s.confs)),
		confFromDom: make([]int32, len(s.confs)),
		exGid:       make([]int32, len(s.excls)),
		exFromDom:   make([]int32, len(s.excls)),
		exFromDelta: make([]float64, len(s.excls)),
	}
}

// prepare fills pr with entity e's from-side move state.
func (s *state) prepare(pr *prepared, e EntityID) {
	from := s.assignment[e]
	pr.e = e
	pr.from = from
	ent := &s.p.Entities[e]
	for si := range s.specs {
		sp := &s.specs[si]
		l := ent.Load[sp.midx]
		pr.load[si] = l
		pr.fromDom[si] = -1
		pr.fromDelta[si] = 0
		if from != Unassigned && l != 0 {
			fd := sp.dom.bucketDom[from]
			pr.fromDom[si] = fd
			lf := sp.load[fd]
			pr.fromDelta[si] = sp.domPenalty(fd, lf-l) - sp.domPenalty(fd, lf)
		}
	}
	for ci := range s.confs {
		cs := &s.confs[ci]
		g := cs.entGroup[e]
		pr.confGid[ci] = g
		pr.confFromDom[ci] = -1
		if g >= 0 && from != Unassigned {
			pr.confFromDom[ci] = cs.dom.bucketDom[from]
		}
	}
	for xi := range s.excls {
		ex := &s.excls[xi]
		g := ex.entGroup[e]
		pr.exGid[xi] = g
		pr.exFromDom[xi] = -1
		pr.exFromDelta[xi] = 0
		if g >= 0 && from != Unassigned {
			fd := ex.dom.bucketDom[from]
			pr.exFromDom[xi] = fd
			// Leaving a domain with >= 2 group members saves Weight.
			if len(ex.members[ekey(g, fd)]) >= 2 {
				pr.exFromDelta[xi] = -ex.weight
			}
		}
	}
	if from != Unassigned {
		pr.base = -(s.affinityPenalty(e, from) + s.drainPen[from])
	} else {
		pr.base = -unassignedPenalty
	}
}

// evalTarget returns the objective change of moving the prepared entity to
// target, and whether the move is feasible (hard conflicts and capacity).
// Only strictly safe targets are feasible: every capacity domain the move
// loads must remain within capacity. evalTarget does not mutate state and is
// safe to call concurrently with other evalTarget calls.
func (s *state) evalTarget(pr *prepared, target BucketID) (float64, bool) {
	if target == pr.from {
		return 0, false
	}

	// Hard conflict feasibility: a group member may not join a domain
	// that already holds one.
	for ci := range s.confs {
		g := pr.confGid[ci]
		if g < 0 {
			continue
		}
		cs := &s.confs[ci]
		td := cs.dom.bucketDom[target]
		if td == pr.confFromDom[ci] {
			continue
		}
		if cs.counts[ekey(g, td)] >= 1 {
			return 0, false
		}
	}

	delta := pr.base + s.affinityPenalty(pr.e, target) + s.drainPen[target]

	// Hard capacity feasibility + capacity/balance penalty deltas.
	for si := range s.specs {
		l := pr.load[si]
		if l == 0 {
			continue
		}
		sp := &s.specs[si]
		td := sp.dom.bucketDom[target]
		if td == pr.fromDom[si] {
			continue // same aggregation domain: no change
		}
		lt := sp.load[td]
		newLoad := lt + l
		if sp.nHard > 0 && newLoad > sp.cap[td] {
			return 0, false
		}
		delta += sp.domPenalty(td, newLoad) - sp.domPenalty(td, lt) + pr.fromDelta[si]
	}

	// Exclusion deltas: joining a domain that already has a group member
	// costs Weight; leaving a crowded one saves it (precomputed).
	for xi := range s.excls {
		g := pr.exGid[xi]
		if g < 0 {
			continue
		}
		ex := &s.excls[xi]
		td := ex.dom.bucketDom[target]
		if td == pr.exFromDom[xi] {
			continue
		}
		if len(ex.members[ekey(g, td)]) >= 1 {
			delta += ex.weight
		}
		delta += pr.exFromDelta[xi]
	}
	return delta, true
}

// moveDelta returns the objective change of moving e from its current bucket
// to target, and whether the move is feasible w.r.t. hard constraints. It is
// allocation-free but uses state-owned scratch, so it must not be called
// concurrently; the parallel path uses prepare/evalTarget directly.
func (s *state) moveDelta(e EntityID, target BucketID) (float64, bool) {
	s.prepare(&s.scratch, e)
	return s.evalTarget(&s.scratch, target)
}

// apply commits the move of e to target, updating all aggregate state and
// the incremental hot-bucket penalties.
func (s *state) apply(e EntityID, target BucketID) {
	from := s.assignment[e]
	if from == target {
		return
	}
	ent := &s.p.Entities[e]
	hot := s.hot

	// Merged spec aggregates. A domain's penalty change is credited to
	// every bucket in the domain (they share the aggregate).
	for si := range s.specs {
		sp := &s.specs[si]
		l := ent.Load[sp.midx]
		if l == 0 {
			continue
		}
		td := sp.dom.bucketDom[target]
		if from != Unassigned {
			fd := sp.dom.bucketDom[from]
			if fd == td {
				continue
			}
			before := sp.domPenalty(fd, sp.load[fd])
			sp.load[fd] -= l
			if d := sp.domPenalty(fd, sp.load[fd]) - before; d != 0 {
				for _, b := range sp.dom.members[fd] {
					hot.add(BucketID(b), d)
				}
			}
		}
		before := sp.domPenalty(td, sp.load[td])
		sp.load[td] += l
		if d := sp.domPenalty(td, sp.load[td]) - before; d != 0 {
			for _, b := range sp.dom.members[td] {
				hot.add(BucketID(b), d)
			}
		}
	}

	// Exclusion member lists. bucketPenalty charges Weight to each entity
	// sharing its domain with another group member, so crossing the 1<->2
	// member boundary also changes the penalty of the other member's
	// bucket. Member buckets are read before s.assignment[e] updates.
	for xi := range s.excls {
		ex := &s.excls[xi]
		g := ex.entGroup[e]
		if g < 0 {
			continue
		}
		w := ex.weight
		td := ex.dom.bucketDom[target]
		if from != Unassigned {
			fd := ex.dom.bucketDom[from]
			if fd == td {
				// Same domain: counts unchanged, but e's own crowding
				// term moves with it.
				if len(ex.members[ekey(g, td)]) >= 2 {
					hot.add(from, -w)
					hot.add(target, w)
				}
				continue
			}
			fk := ekey(g, fd)
			mem := ex.members[fk]
			for i, id := range mem {
				if id == e {
					mem[i] = mem[len(mem)-1]
					mem = mem[:len(mem)-1]
					break
				}
			}
			if len(mem) == 0 {
				delete(ex.members, fk)
			} else {
				ex.members[fk] = mem
			}
			if len(mem)+1 >= 2 {
				hot.add(from, -w) // e was crowded at the source
			}
			if len(mem) == 1 {
				hot.add(s.assignment[mem[0]], -w) // last peer no longer crowded
			}
			tk := ekey(g, td)
			tmem := ex.members[tk]
			if len(tmem) >= 1 {
				hot.add(target, w) // e becomes crowded at the target
			}
			if len(tmem) == 1 {
				hot.add(s.assignment[tmem[0]], w) // sole occupant now crowded
			}
			ex.members[tk] = append(tmem, e)
		} else {
			tk := ekey(g, td)
			tmem := ex.members[tk]
			if len(tmem) >= 1 {
				hot.add(target, w)
			}
			if len(tmem) == 1 {
				hot.add(s.assignment[tmem[0]], w)
			}
			ex.members[tk] = append(tmem, e)
		}
	}

	// Conflict counts (hard; no penalty term to maintain).
	for ci := range s.confs {
		cs := &s.confs[ci]
		g := cs.entGroup[e]
		if g < 0 {
			continue
		}
		if from != Unassigned {
			fk := ekey(g, cs.dom.bucketDom[from])
			if cs.counts[fk]--; cs.counts[fk] == 0 {
				delete(cs.counts, fk)
			}
		}
		cs.counts[ekey(g, cs.dom.bucketDom[target])]++
	}

	// Affinity and drain are per-entity terms that travel with e.
	if from != Unassigned {
		if d := s.affinityPenalty(e, from) + s.drainPen[from]; d != 0 {
			hot.add(from, -d)
		}
	}
	if d := s.affinityPenalty(e, target) + s.drainPen[target]; d != 0 {
		hot.add(target, d)
	}

	if from != Unassigned {
		lst := s.byBucket[from]
		for i, id := range lst {
			if id == e {
				lst[i] = lst[len(lst)-1]
				s.byBucket[from] = lst[:len(lst)-1]
				break
			}
		}
		for m, l := range ent.Load {
			s.bucketLoad[from][m] -= l
		}
	} else {
		delete(s.unassigned, e)
	}
	s.byBucket[target] = append(s.byBucket[target], e)
	for m, l := range ent.Load {
		s.bucketLoad[target][m] += l
	}
	s.assignment[e] = target
}

// ViolationCounts summarizes constraint and goal violations.
type ViolationCounts struct {
	// Capacity keys over their hard capacity.
	Capacity int
	// Conflict counts colocated same-group entities under hard conflict
	// specs (pairs beyond the first per domain).
	Conflict int
	// Balance keys over UtilCap or over mean+MaxDiff (each rule counts).
	Balance int
	// Entities not on their preferred domain.
	Affinity int
	// Colocated same-group entity pairs beyond the first per domain.
	Exclusion int
	// Entities on draining buckets.
	Drain int
	// Entities with no assignment.
	Unassigned int
}

// Total sums all violation categories.
func (v ViolationCounts) Total() int {
	return v.Capacity + v.Conflict + v.Balance + v.Affinity + v.Exclusion + v.Drain + v.Unassigned
}

// violations does a full scan; used for reporting, not in the hot path.
func (s *state) violations() ViolationCounts {
	var v ViolationCounts
	for si := range s.specs {
		sp := &s.specs[si]
		if sp.nHard > 0 {
			for d := range sp.load {
				if sp.load[d] > sp.cap[d]+1e-9 {
					v.Capacity += sp.nHard
				}
			}
		}
		for i := range sp.bals {
			bp := &sp.bals[i]
			for d := range sp.cap {
				c := sp.cap[d]
				if c <= 0 {
					continue
				}
				u := sp.load[d] / c
				if bp.utilCap > 0 && u > bp.utilCap+1e-9 {
					v.Balance++
				}
				if bp.maxDiff > 0 && u > sp.meanUtil+bp.maxDiff+1e-9 {
					v.Balance++
				}
			}
		}
	}
	for e := range s.p.Entities {
		b := s.assignment[e]
		if b == Unassigned {
			continue
		}
		if s.affinityPenalty(EntityID(e), b) > 0 {
			v.Affinity++
		}
		if s.drainPenalty(b) > 0 {
			v.Drain++
		}
	}
	for xi := range s.excls {
		for _, mem := range s.excls[xi].members {
			if len(mem) > 1 {
				v.Exclusion += len(mem) - 1
			}
		}
	}
	for ci := range s.confs {
		for _, n := range s.confs[ci].counts {
			if n > 1 {
				v.Conflict += int(n) - 1
			}
		}
	}
	v.Unassigned = len(s.unassigned)
	return v
}

// bucketPenalty recomputes from scratch how much bucket b contributes to the
// objective. newState seeds the hot set with it; afterwards apply maintains
// the same quantity incrementally (tests cross-check the two).
func (s *state) bucketPenalty(b BucketID) float64 {
	var pen float64
	for si := range s.specs {
		sp := &s.specs[si]
		d := sp.dom.bucketDom[b]
		pen += sp.domPenalty(d, sp.load[d])
	}
	for _, e := range s.byBucket[b] {
		pen += s.affinityPenalty(e, b) + s.drainPenalty(b)
		for xi := range s.excls {
			ex := &s.excls[xi]
			if g := ex.entGroup[e]; g >= 0 {
				if len(ex.members[ekey(g, ex.dom.bucketDom[b])]) > 1 {
					pen += ex.weight
				}
			}
		}
	}
	return pen
}

// ensureSigs interns every entity's equivalence signature into a dense
// class ID, once per state. Loads and goals are immutable, so the IDs are
// never invalidated; candidate filtering then dedups by int comparison
// instead of rebuilding a string-keyed set per attempt.
func (s *state) ensureSigs() {
	if s.sigID != nil {
		return
	}
	s.sigID = make([]int32, len(s.p.Entities))
	idx := make(map[string]int32, len(s.p.Entities))
	for e := range s.p.Entities {
		sig := s.p.equivalenceSignature(EntityID(e))
		id, ok := idx[sig]
		if !ok {
			id = int32(len(idx))
			idx[sig] = id
		}
		s.sigID[e] = id
	}
	s.numSig = len(idx)
}

// equivalenceSignature groups interchangeable entities: same load vector,
// same affinity goals, and same exclusion groups. Evaluating one entity per
// class per bucket is the paper's "reuses the computation for equivalent
// shards" optimization.
func (p *Problem) equivalenceSignature(e EntityID) string {
	ent := &p.Entities[e]
	sig := make([]byte, 0, 64)
	for _, l := range ent.Load {
		sig = appendFloat(sig, l)
	}
	for _, g := range p.affinityGoals[e] {
		sig = append(sig, g.Scope...)
		sig = append(sig, '=')
		sig = append(sig, g.Domain...)
		sig = appendFloat(sig, g.Weight)
	}
	for i := range p.exclusionSpecs {
		if g, ok := p.exclusionSpecs[i].Groups[e]; ok {
			sig = append(sig, byte('0'+i%10))
			sig = append(sig, g...)
		}
	}
	return string(sig)
}

func appendFloat(b []byte, f float64) []byte {
	u := math.Float64bits(f)
	for i := 0; i < 8; i++ {
		b = append(b, byte(u>>(8*i)))
	}
	return b
}
