// Package solver implements a generic constraint solver for assignment
// problems, modeled after ReBalancer (§5.2): callers describe entities
// (shard replicas), buckets (servers), hard capacity constraints, and
// weighted soft goals through a high-level API, and the solver improves the
// assignment with local search (§5.3).
//
// The solver is domain-independent: it knows nothing about shards, regions,
// or load balancing. Shard Manager's allocator (package allocator)
// translates its placement problem into this vocabulary and supplies domain
// knowledge — grouped target sampling, big-entities-first ordering, and
// goal batching — that the paper shows is essential to make local search
// converge quickly (Fig 22).
//
// Incremental evaluation: the paper describes representing the objective as
// a tree of variables so that evaluating a move touches only O(log n)
// nodes. We achieve the same asymptotics with per-spec aggregate state
// (per-bucket/per-domain load sums and per-group domain counts) updated in
// O(1) per move; evaluating a candidate move never rescans entities.
package solver

import (
	"fmt"
	"math"
)

// EntityID indexes an entity within a Problem.
type EntityID int

// BucketID indexes a bucket within a Problem. Unassigned is the sentinel
// for entities with no current placement (e.g. replicas of a failed server).
type BucketID int

// Unassigned marks an entity without a bucket.
const Unassigned BucketID = -1

// ScopeBucket is the Scope value meaning "each bucket individually"; any
// other scope string refers to a bucket property (e.g. "region", "rack").
const ScopeBucket = ""

// unassignedPenalty dominates every soft goal so that placing unassigned
// entities is always the most urgent improvement.
const unassignedPenalty = 1e12

// Entity is one assignable unit (a shard replica).
type Entity struct {
	Name string
	// Load per metric, indexed like Problem.Metrics.
	Load []float64
	// Bucket is the current assignment (Unassigned if none).
	Bucket BucketID
	// Movable entities may be reassigned; pinned ones contribute load
	// but never move.
	Movable bool
}

// Bucket is one assignment target (a server).
type Bucket struct {
	Name string
	// Capacity per metric, indexed like Problem.Metrics.
	Capacity []float64
	// Props maps a scope name to this bucket's domain at that scope,
	// e.g. {"region": "frc", "rack": "frc/dc0/rack01"}.
	Props map[string]string
	// Group tags the bucket for grouped candidate sampling (set by the
	// caller; typically the region or hardware class).
	Group string
	// Draining marks buckets that should shed entities (pending
	// maintenance or software upgrade, §5.1 soft goal 3).
	Draining bool
}

// CapacitySpec is a hard constraint: for each aggregation key at Scope, the
// sum of entity loads for Metric must not exceed the key's capacity (the sum
// of its buckets' capacities). Mirrors addConstraint(CapacitySpec{...}) in
// Fig 13.
type CapacitySpec struct {
	Metric string
	Scope  string
}

// BalanceSpec is a soft goal: keep each aggregation key's utilization of
// Metric under UtilCap, and within MaxDiff of the mean utilization
// (§5.1 soft goals 4-6). Mirrors addGoal(BalanceSpec{...}) in Fig 13.
type BalanceSpec struct {
	Metric string
	Scope  string
	// UtilCap is the absolute utilization threshold (e.g. 0.9); <= 0
	// disables it.
	UtilCap float64
	// MaxDiff is the allowed deviation above mean utilization (e.g.
	// 0.1); <= 0 disables it.
	MaxDiff float64
	Weight  float64
}

// AffinityGoal is a soft goal: one entity prefers buckets whose domain at
// Scope equals Domain, with the given weight (region preference, §5.1 soft
// goal 1; Fig 13 statements 5-6).
type AffinityGoal struct {
	Scope  string
	Entity EntityID
	Domain string
	Weight float64
}

// ExclusionSpec is a soft goal: entities sharing a group key should occupy
// distinct domains at Scope (spread of replicas, §5.1 soft goal 2; Fig 13
// statements 7-8). Each colocated extra entity costs Weight.
type ExclusionSpec struct {
	Scope  string
	Groups map[EntityID]string
	Weight float64
}

// Problem is a mutable assignment problem under construction. Build it with
// the Add* methods, then call Solve.
type Problem struct {
	Metrics []string
	midx    map[string]int

	Entities []Entity
	Buckets  []Bucket

	capacitySpecs  []CapacitySpec
	balanceSpecs   []BalanceSpec
	affinityGoals  map[EntityID][]AffinityGoal
	exclusionSpecs []ExclusionSpec
	conflictSpecs  []ExclusionSpec
	drainWeight    float64
}

// NewProblem creates a problem with the given load metrics.
func NewProblem(metrics []string) *Problem {
	if len(metrics) == 0 {
		panic("solver: NewProblem with no metrics")
	}
	midx := make(map[string]int, len(metrics))
	for i, m := range metrics {
		if _, dup := midx[m]; dup {
			panic(fmt.Sprintf("solver: duplicate metric %q", m))
		}
		midx[m] = i
	}
	return &Problem{
		Metrics:       append([]string(nil), metrics...),
		midx:          midx,
		affinityGoals: make(map[EntityID][]AffinityGoal),
	}
}

// MetricIndex returns the index of a metric name.
func (p *Problem) MetricIndex(metric string) int {
	i, ok := p.midx[metric]
	if !ok {
		panic(fmt.Sprintf("solver: unknown metric %q", metric))
	}
	return i
}

// AddBucket registers a bucket and returns its ID.
func (p *Problem) AddBucket(b Bucket) BucketID {
	if len(b.Capacity) != len(p.Metrics) {
		panic(fmt.Sprintf("solver: bucket %q capacity has %d metrics, want %d", b.Name, len(b.Capacity), len(p.Metrics)))
	}
	p.Buckets = append(p.Buckets, b)
	return BucketID(len(p.Buckets) - 1)
}

// AddEntity registers an entity and returns its ID.
func (p *Problem) AddEntity(e Entity) EntityID {
	if len(e.Load) != len(p.Metrics) {
		panic(fmt.Sprintf("solver: entity %q load has %d metrics, want %d", e.Name, len(e.Load), len(p.Metrics)))
	}
	if e.Bucket != Unassigned && (e.Bucket < 0 || int(e.Bucket) >= len(p.Buckets)) {
		panic(fmt.Sprintf("solver: entity %q assigned to unknown bucket %d", e.Name, e.Bucket))
	}
	p.Entities = append(p.Entities, e)
	return EntityID(len(p.Entities) - 1)
}

// AddConstraint registers a hard capacity constraint.
func (p *Problem) AddConstraint(c CapacitySpec) {
	p.MetricIndex(c.Metric)
	p.capacitySpecs = append(p.capacitySpecs, c)
}

// AddBalanceGoal registers a soft balance goal.
func (p *Problem) AddBalanceGoal(b BalanceSpec) {
	p.MetricIndex(b.Metric)
	if b.Weight <= 0 {
		panic("solver: balance goal needs positive weight")
	}
	if b.UtilCap <= 0 && b.MaxDiff <= 0 {
		panic("solver: balance goal needs UtilCap or MaxDiff")
	}
	p.balanceSpecs = append(p.balanceSpecs, b)
}

// AddAffinityGoal registers a soft per-entity domain preference.
func (p *Problem) AddAffinityGoal(g AffinityGoal) {
	if g.Weight <= 0 {
		panic("solver: affinity goal needs positive weight")
	}
	if g.Entity < 0 || int(g.Entity) >= len(p.Entities) {
		panic(fmt.Sprintf("solver: affinity for unknown entity %d", g.Entity))
	}
	p.affinityGoals[g.Entity] = append(p.affinityGoals[g.Entity], g)
}

// AddExclusionGoal registers a soft spread goal.
func (p *Problem) AddExclusionGoal(s ExclusionSpec) {
	if s.Weight <= 0 {
		panic("solver: exclusion goal needs positive weight")
	}
	p.exclusionSpecs = append(p.exclusionSpecs, s)
}

// AddConflict registers a HARD exclusion: no two entities of the same group
// may occupy the same domain at Scope. Moves that would colocate are
// infeasible. Shard Manager uses it at server scope — two replicas of one
// shard must never share a server. Weight is ignored.
func (p *Problem) AddConflict(s ExclusionSpec) {
	p.conflictSpecs = append(p.conflictSpecs, s)
}

// AddDrainGoal penalizes every entity on a Draining bucket with weight w.
func (p *Problem) AddDrainGoal(w float64) {
	if w <= 0 {
		panic("solver: drain goal needs positive weight")
	}
	p.drainWeight = w
}

// domainOf returns the aggregation key of bucket b at scope: the bucket's
// own index for ScopeBucket, else its Props value.
func (p *Problem) domainOf(b BucketID, scope string) string {
	if scope == ScopeBucket {
		return p.Buckets[b].Name
	}
	d, ok := p.Buckets[b].Props[scope]
	if !ok {
		panic(fmt.Sprintf("solver: bucket %q lacks scope %q", p.Buckets[b].Name, scope))
	}
	return d
}

// ---------------------------------------------------------------------------
// Incremental evaluation state.

// aggState tracks load and capacity per aggregation key for one spec.
type aggState struct {
	scope string
	midx  int
	// key -> aggregate
	load map[string]float64
	cap  map[string]float64
	// For balance specs: mean utilization over keys with capacity,
	// fixed at state-build time (moves conserve total load).
	meanUtil float64
}

// state is the solver's incremental view of a problem.
type state struct {
	p *Problem
	// assignment[e] is the current bucket of entity e.
	assignment []BucketID

	capStates []aggState // parallel to capacitySpecs
	balStates []aggState // parallel to balanceSpecs

	// exclusion counts: for each exclusion spec, (group|domain) -> count.
	exclCounts []map[string]int
	// conflict counts: for each conflict spec, (group|domain) -> count.
	confCounts []map[string]int

	// Per-bucket entity sets, maintained for neighborhood generation.
	byBucket [][]EntityID

	// bucketLoad[b][m] is the total load of metric m on bucket b,
	// regardless of spec scopes; samplers use it to prefer cold targets.
	bucketLoad [][]float64

	unassigned map[EntityID]struct{}
}

func key2(group, domain string) string { return group + "\x00" + domain }

// newState builds the incremental state from the problem's current
// assignment.
func newState(p *Problem) *state {
	s := &state{
		p:          p,
		assignment: make([]BucketID, len(p.Entities)),
		byBucket:   make([][]EntityID, len(p.Buckets)),
		unassigned: make(map[EntityID]struct{}),
	}
	s.bucketLoad = make([][]float64, len(p.Buckets))
	for b := range s.bucketLoad {
		s.bucketLoad[b] = make([]float64, len(p.Metrics))
	}
	for i := range p.Entities {
		s.assignment[i] = p.Entities[i].Bucket
		if p.Entities[i].Bucket == Unassigned {
			s.unassigned[EntityID(i)] = struct{}{}
		} else {
			s.byBucket[p.Entities[i].Bucket] = append(s.byBucket[p.Entities[i].Bucket], EntityID(i))
			for m, l := range p.Entities[i].Load {
				s.bucketLoad[p.Entities[i].Bucket][m] += l
			}
		}
	}
	build := func(metric, scope string) aggState {
		a := aggState{
			scope: scope,
			midx:  p.MetricIndex(metric),
			load:  make(map[string]float64),
			cap:   make(map[string]float64),
		}
		for b := range p.Buckets {
			k := p.domainOf(BucketID(b), scope)
			a.cap[k] += p.Buckets[b].Capacity[a.midx]
		}
		for e := range p.Entities {
			if s.assignment[e] == Unassigned {
				continue
			}
			k := p.domainOf(s.assignment[e], scope)
			a.load[k] += p.Entities[e].Load[a.midx]
		}
		var totLoad, totCap float64
		for k, c := range a.cap {
			totCap += c
			totLoad += a.load[k]
		}
		// Include load of unassigned entities in the mean: once placed
		// they will push utilization up, and the target must account
		// for them or the solver would chase a moving average.
		for e := range s.unassigned {
			totLoad += p.Entities[e].Load[a.midx]
		}
		if totCap > 0 {
			a.meanUtil = totLoad / totCap
		}
		return a
	}
	for _, c := range p.capacitySpecs {
		s.capStates = append(s.capStates, build(c.Metric, c.Scope))
	}
	for _, b := range p.balanceSpecs {
		s.balStates = append(s.balStates, build(b.Metric, b.Scope))
	}
	buildCounts := func(ex ExclusionSpec) map[string]int {
		counts := make(map[string]int)
		for e, g := range ex.Groups {
			if s.assignment[e] == Unassigned {
				continue
			}
			counts[key2(g, p.domainOf(s.assignment[e], ex.Scope))]++
		}
		return counts
	}
	for _, ex := range p.exclusionSpecs {
		s.exclCounts = append(s.exclCounts, buildCounts(ex))
	}
	for _, ex := range p.conflictSpecs {
		s.confCounts = append(s.confCounts, buildCounts(ex))
	}
	return s
}

// balancePenalty returns one balance spec's penalty for a key given its
// load. Penalty is measured in capacity-weighted overload so that moving a
// large entity off an overloaded key helps proportionally.
func balancePenalty(spec BalanceSpec, a *aggState, k string, load float64) float64 {
	c := a.cap[k]
	if c <= 0 {
		// Load on a zero-capacity key is maximally penalized.
		if load > 0 {
			return spec.Weight * load
		}
		return 0
	}
	u := load / c
	var pen float64
	if spec.UtilCap > 0 && u > spec.UtilCap {
		pen += (u - spec.UtilCap) * c
	}
	if spec.MaxDiff > 0 && u > a.meanUtil+spec.MaxDiff {
		pen += (u - a.meanUtil - spec.MaxDiff) * c
	}
	return spec.Weight * pen
}

// capacityPenalty treats hard-constraint overflow as a very large soft
// penalty so local search can repair infeasible initial states while the
// feasibility check prevents creating new overflow.
func capacityPenalty(a *aggState, k string, load float64) float64 {
	c := a.cap[k]
	if load > c {
		return 1e6 * (load - c)
	}
	return 0
}

// affinityPenalty returns the penalty of entity e sitting on bucket b.
func (s *state) affinityPenalty(e EntityID, b BucketID) float64 {
	goals := s.p.affinityGoals[e]
	if len(goals) == 0 {
		return 0
	}
	var pen float64
	for _, g := range goals {
		if s.p.domainOf(b, g.Scope) != g.Domain {
			pen += g.Weight
		}
	}
	return pen
}

// drainPenalty returns the penalty of entity e sitting on bucket b.
func (s *state) drainPenalty(b BucketID) float64 {
	if s.p.drainWeight > 0 && s.p.Buckets[b].Draining {
		return s.p.drainWeight
	}
	return 0
}

// moveDelta returns the objective change of moving e from its current
// bucket to target, and whether the move is feasible w.r.t. hard capacity
// constraints. A move is feasible if every capacity aggregation key it
// loads stays within capacity OR was already over capacity and does not get
// worse... (we only allow strictly safe targets: target keys must remain
// within capacity).
func (s *state) moveDelta(e EntityID, target BucketID) (float64, bool) {
	from := s.assignment[e]
	if from == target {
		return 0, false
	}
	ent := &s.p.Entities[e]
	var delta float64

	// Hard conflict feasibility: a group member may not join a domain
	// that already holds one.
	for i := range s.p.conflictSpecs {
		cf := &s.p.conflictSpecs[i]
		g, ok := cf.Groups[e]
		if !ok {
			continue
		}
		td := s.p.domainOf(target, cf.Scope)
		if from != Unassigned && s.p.domainOf(from, cf.Scope) == td {
			continue
		}
		if s.confCounts[i][key2(g, td)] >= 1 {
			return 0, false
		}
	}

	// Hard capacity feasibility + overflow penalty delta.
	for i := range s.p.capacitySpecs {
		a := &s.capStates[i]
		l := ent.Load[a.midx]
		if l == 0 {
			continue
		}
		tk := s.p.domainOf(target, a.scope)
		newLoad := a.load[tk] + l
		var fk string
		if from != Unassigned {
			fk = s.p.domainOf(from, a.scope)
			if fk == tk {
				continue // same aggregation key: no change
			}
		}
		if newLoad > a.cap[tk] {
			return 0, false
		}
		delta += capacityPenalty(a, tk, newLoad) - capacityPenalty(a, tk, a.load[tk])
		if from != Unassigned {
			delta += capacityPenalty(a, fk, a.load[fk]-l) - capacityPenalty(a, fk, a.load[fk])
		}
	}

	// Balance deltas.
	for i := range s.p.balanceSpecs {
		spec := s.p.balanceSpecs[i]
		a := &s.balStates[i]
		l := ent.Load[a.midx]
		if l == 0 {
			continue
		}
		tk := s.p.domainOf(target, a.scope)
		var fk string
		if from != Unassigned {
			fk = s.p.domainOf(from, a.scope)
			if fk == tk {
				continue
			}
		}
		delta += balancePenalty(spec, a, tk, a.load[tk]+l) - balancePenalty(spec, a, tk, a.load[tk])
		if from != Unassigned {
			delta += balancePenalty(spec, a, fk, a.load[fk]-l) - balancePenalty(spec, a, fk, a.load[fk])
		}
	}

	// Exclusion deltas.
	for i := range s.p.exclusionSpecs {
		ex := &s.p.exclusionSpecs[i]
		g, ok := ex.Groups[e]
		if !ok {
			continue
		}
		td := s.p.domainOf(target, ex.Scope)
		var fd string
		if from != Unassigned {
			fd = s.p.domainOf(from, ex.Scope)
			if fd == td {
				continue
			}
		}
		counts := s.exclCounts[i]
		// Adding to target domain costs Weight if it already has a
		// group member; leaving the source domain saves Weight if it
		// had more than one.
		if counts[key2(g, td)] >= 1 {
			delta += ex.Weight
		}
		if from != Unassigned && counts[key2(g, fd)] >= 2 {
			delta -= ex.Weight
		}
	}

	// Affinity and drain.
	delta += s.affinityPenalty(e, target)
	delta += s.drainPenalty(target)
	if from != Unassigned {
		delta -= s.affinityPenalty(e, from)
		delta -= s.drainPenalty(from)
	} else {
		delta -= unassignedPenalty
	}
	return delta, true
}

// apply commits the move of e to target, updating all aggregate state.
func (s *state) apply(e EntityID, target BucketID) {
	from := s.assignment[e]
	if from == target {
		return
	}
	ent := &s.p.Entities[e]
	move := func(a *aggState) {
		l := ent.Load[a.midx]
		if l == 0 {
			return
		}
		if from != Unassigned {
			a.load[s.p.domainOf(from, a.scope)] -= l
		}
		a.load[s.p.domainOf(target, a.scope)] += l
	}
	for i := range s.capStates {
		move(&s.capStates[i])
	}
	for i := range s.balStates {
		move(&s.balStates[i])
	}
	for i := range s.p.exclusionSpecs {
		ex := &s.p.exclusionSpecs[i]
		g, ok := ex.Groups[e]
		if !ok {
			continue
		}
		if from != Unassigned {
			s.exclCounts[i][key2(g, s.p.domainOf(from, ex.Scope))]--
		}
		s.exclCounts[i][key2(g, s.p.domainOf(target, ex.Scope))]++
	}
	for i := range s.p.conflictSpecs {
		cf := &s.p.conflictSpecs[i]
		g, ok := cf.Groups[e]
		if !ok {
			continue
		}
		if from != Unassigned {
			s.confCounts[i][key2(g, s.p.domainOf(from, cf.Scope))]--
		}
		s.confCounts[i][key2(g, s.p.domainOf(target, cf.Scope))]++
	}
	if from != Unassigned {
		lst := s.byBucket[from]
		for i, id := range lst {
			if id == e {
				lst[i] = lst[len(lst)-1]
				s.byBucket[from] = lst[:len(lst)-1]
				break
			}
		}
		for m, l := range ent.Load {
			s.bucketLoad[from][m] -= l
		}
	} else {
		delete(s.unassigned, e)
	}
	s.byBucket[target] = append(s.byBucket[target], e)
	for m, l := range ent.Load {
		s.bucketLoad[target][m] += l
	}
	s.assignment[e] = target
}

// ViolationCounts summarizes constraint and goal violations.
type ViolationCounts struct {
	// Capacity keys over their hard capacity.
	Capacity int
	// Conflict counts colocated same-group entities under hard conflict
	// specs (pairs beyond the first per domain).
	Conflict int
	// Balance keys over UtilCap or over mean+MaxDiff (each rule counts).
	Balance int
	// Entities not on their preferred domain.
	Affinity int
	// Colocated same-group entity pairs beyond the first per domain.
	Exclusion int
	// Entities on draining buckets.
	Drain int
	// Entities with no assignment.
	Unassigned int
}

// Total sums all violation categories.
func (v ViolationCounts) Total() int {
	return v.Capacity + v.Conflict + v.Balance + v.Affinity + v.Exclusion + v.Drain + v.Unassigned
}

// violations does a full scan; used for reporting, not in the hot path.
func (s *state) violations() ViolationCounts {
	var v ViolationCounts
	for i := range s.p.capacitySpecs {
		a := &s.capStates[i]
		for k, load := range a.load {
			if load > a.cap[k]+1e-9 {
				v.Capacity++
			}
		}
	}
	for i := range s.p.balanceSpecs {
		spec := s.p.balanceSpecs[i]
		a := &s.balStates[i]
		for k, c := range a.cap {
			if c <= 0 {
				continue
			}
			u := a.load[k] / c
			if spec.UtilCap > 0 && u > spec.UtilCap+1e-9 {
				v.Balance++
			}
			if spec.MaxDiff > 0 && u > a.meanUtil+spec.MaxDiff+1e-9 {
				v.Balance++
			}
		}
	}
	for e := range s.p.Entities {
		b := s.assignment[e]
		if b == Unassigned {
			continue
		}
		if s.affinityPenalty(EntityID(e), b) > 0 {
			v.Affinity++
		}
		if s.drainPenalty(b) > 0 {
			v.Drain++
		}
	}
	for i := range s.p.exclusionSpecs {
		for _, n := range s.exclCounts[i] {
			if n > 1 {
				v.Exclusion += n - 1
			}
		}
	}
	for i := range s.p.conflictSpecs {
		for _, n := range s.confCounts[i] {
			if n > 1 {
				v.Conflict += n - 1
			}
		}
	}
	v.Unassigned = len(s.unassigned)
	return v
}

// bucketPenalty estimates how much bucket b contributes to the objective;
// used to pick hot buckets. It scans only the spec aggregates that b
// belongs to plus b's entities for affinity/drain.
func (s *state) bucketPenalty(b BucketID) float64 {
	var pen float64
	for i := range s.p.capacitySpecs {
		a := &s.capStates[i]
		k := s.p.domainOf(b, a.scope)
		pen += capacityPenalty(a, k, a.load[k])
	}
	for i := range s.p.balanceSpecs {
		a := &s.balStates[i]
		k := s.p.domainOf(b, a.scope)
		pen += balancePenalty(s.p.balanceSpecs[i], a, k, a.load[k])
	}
	for _, e := range s.byBucket[b] {
		pen += s.affinityPenalty(e, b) + s.drainPenalty(b)
		for i := range s.p.exclusionSpecs {
			ex := &s.p.exclusionSpecs[i]
			if g, ok := ex.Groups[e]; ok {
				if s.exclCounts[i][key2(g, s.p.domainOf(b, ex.Scope))] > 1 {
					pen += ex.Weight
				}
			}
		}
	}
	return pen
}

// equivalenceSignature groups interchangeable entities: same load vector,
// same affinity goals, and same exclusion groups. Evaluating one entity per
// class per bucket is the paper's "reuses the computation for equivalent
// shards" optimization.
func (p *Problem) equivalenceSignature(e EntityID) string {
	ent := &p.Entities[e]
	sig := make([]byte, 0, 64)
	for _, l := range ent.Load {
		sig = appendFloat(sig, l)
	}
	for _, g := range p.affinityGoals[e] {
		sig = append(sig, g.Scope...)
		sig = append(sig, '=')
		sig = append(sig, g.Domain...)
		sig = appendFloat(sig, g.Weight)
	}
	for i := range p.exclusionSpecs {
		if g, ok := p.exclusionSpecs[i].Groups[e]; ok {
			sig = append(sig, byte('0'+i%10))
			sig = append(sig, g...)
		}
	}
	return string(sig)
}

func appendFloat(b []byte, f float64) []byte {
	u := math.Float64bits(f)
	for i := 0; i < 8; i++ {
		b = append(b, byte(u>>(8*i)))
	}
	return b
}
