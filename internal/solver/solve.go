package solver

import (
	"sort"
	"sync"
	"time"

	"shardmanager/internal/sim"
)

// View gives samplers read access to the evolving assignment so they can
// prefer underloaded targets.
type View struct {
	st *state
}

// Utilization returns bucket b's current utilization for metric index m
// (load / capacity; +Inf-free: zero capacity with load returns 1e18).
func (v *View) Utilization(b BucketID, m int) float64 {
	c := v.st.p.Buckets[b].Capacity[m]
	l := v.st.bucketLoad[b][m]
	if c <= 0 {
		if l > 0 {
			return 1e18
		}
		return 0
	}
	return l / c
}

// Load returns bucket b's current total load for metric index m.
func (v *View) Load(b BucketID, m int) float64 { return v.st.bucketLoad[b][m] }

// Entities returns the number of entities currently on bucket b.
func (v *View) Entities(b BucketID) int { return len(v.st.byBucket[b]) }

// Sampler picks candidate target buckets for an entity. It may return fewer
// than k buckets; duplicates are tolerated. The returned slice is only valid
// until the next call — samplers may reuse its backing array, and the solver
// consumes each batch before sampling again.
type Sampler func(rng *sim.RNG, e EntityID, k int, view *View) []BucketID

// RandomSampler samples buckets uniformly — the baseline that Fig 22
// compares against grouped, utilization-aware sampling.
func RandomSampler(p *Problem) Sampler {
	n := len(p.Buckets)
	var out []BucketID
	return func(rng *sim.RNG, _ EntityID, k int, _ *View) []BucketID {
		out = out[:0]
		for i := 0; i < k; i++ {
			out = append(out, BucketID(rng.Intn(n)))
		}
		return out
	}
}

// GroupedSampler groups buckets by their Group tag and draws candidates
// across groups, preferring underloaded buckets within each group. This is
// the domain-knowledge optimization of §5.3: sampling across groups has a
// much better chance of finding a target that satisfies region-preference
// and spread goals than uniform sampling.
//
// At most k candidates are returned. With more groups than k, a rotation
// over the group order decides which groups contribute this call, so every
// group is covered across successive calls and candidate counts still match
// CandidateTargets.
func GroupedSampler(p *Problem, utilMetric int) Sampler {
	groups := make(map[string][]BucketID)
	var order []string
	for b := range p.Buckets {
		g := p.Buckets[b].Group
		if _, ok := groups[g]; !ok {
			order = append(order, g)
		}
		groups[g] = append(groups[g], BucketID(b))
	}
	// Flatten to a slice indexed by group position: the sampler is the
	// solver's hottest caller-supplied code and must not hash strings.
	byGroup := make([][]BucketID, len(order))
	for i, g := range order {
		byGroup[i] = groups[g]
	}
	var rot int
	var out []BucketID
	return func(rng *sim.RNG, _ EntityID, k int, view *View) []BucketID {
		if k <= 0 {
			return nil
		}
		ng := len(order)
		perGroup := (k + ng - 1) / ng
		if perGroup < 1 {
			perGroup = 1
		}
		start := rot % ng
		used := 0
		out = out[:0]
		for gi := 0; gi < ng && len(out) < k; gi++ {
			used++
			members := byGroup[(start+gi)%ng]
			// Draw 2x candidates, keep the least-utilized half:
			// cheap bias toward cold targets.
			for i := 0; i < perGroup && len(out) < k; i++ {
				a := members[rng.Intn(len(members))]
				b := members[rng.Intn(len(members))]
				if view.Utilization(b, utilMetric) < view.Utilization(a, utilMetric) {
					a = b
				}
				out = append(out, a)
			}
		}
		// Advance the rotation past the groups consumed, so the next
		// call starts where this one left off and all groups get
		// covered across successive calls.
		rot = start + used
		return out
	}
}

// Options configure one Solve call.
type Options struct {
	// TimeLimit bounds wall-clock solving time; <= 0 means no limit.
	TimeLimit time.Duration
	// MoveBudget bounds the number of applied moves; <= 0 means no limit.
	MoveBudget int
	// EvalBudget bounds the number of candidate-move evaluations; <= 0
	// means no limit. Unlike TimeLimit, an evaluation budget is
	// deterministic: two runs with the same seed stop at the same point,
	// so experiment curves are reproducible (Fig 21/22).
	EvalBudget int
	// CandidateTargets is how many target buckets to sample per entity
	// (default 16).
	CandidateTargets int
	// MaxEntitiesPerBucket is how many entities of a hot bucket to
	// evaluate per fix attempt (default 16).
	MaxEntitiesPerBucket int
	// BigFirst evaluates a hot bucket's largest entities first (§5.3:
	// "SM guides ReBalancer to evaluate large shards earlier").
	BigFirst bool
	// BigFirstMetric is the metric index used to order entities when
	// BigFirst is set.
	BigFirstMetric int
	// UseEquivalence skips equivalent entities on the same bucket
	// (§5.3: "reuses the computation for equivalent shards").
	UseEquivalence bool
	// EnableSwap tries two-way swaps when no single move improves.
	EnableSwap bool
	// Sampler picks candidate targets (default RandomSampler).
	Sampler Sampler
	// Seed drives the solver's deterministic RNG.
	Seed uint64
	// Parallel > 1 fans candidate evaluation for each sampled
	// (entity, target) grid over that many worker goroutines. The result
	// is byte-identical to serial mode: targets are sampled serially (the
	// RNG stream is untouched) and workers reduce to the same argmin via
	// a stable (delta, pair-index) tie-break.
	Parallel int
	// Progress, if set, is invoked after every search round with the
	// current violation counts; experiments use it to plot
	// violations-vs-evaluations curves (Fig 21/22).
	Progress func(ProgressInfo)
}

// DefaultOptions returns the fully optimized configuration.
func DefaultOptions() Options {
	return Options{
		CandidateTargets:     16,
		MaxEntitiesPerBucket: 16,
		BigFirst:             true,
		UseEquivalence:       true,
		EnableSwap:           true,
		Seed:                 1,
	}
}

// ProgressInfo is a snapshot of solver progress.
type ProgressInfo struct {
	Elapsed time.Duration
	Moves   int
	// Evaluated counts candidate evaluations so far; it is the
	// deterministic progress axis (same seed -> same snapshots).
	Evaluated  int
	Violations ViolationCounts
}

// Move is one applied reassignment.
type Move struct {
	Entity EntityID
	From   BucketID
	To     BucketID
}

// Result reports the outcome of Solve.
type Result struct {
	// Moves in application order. An entity moved twice appears twice.
	Moves []Move
	// Assignment is the final bucket of every entity.
	Assignment []BucketID
	// Initial and Final violation counts.
	Initial, Final ViolationCounts
	// Rounds of hot-bucket repair epochs performed.
	Rounds int
	// Evaluated counts candidate move evaluations.
	Evaluated int
	// Elapsed wall-clock time.
	Elapsed time.Duration
}

const improveEps = 1e-9

// maxSwapEntities bounds how many of a hot bucket's candidate entities a
// swap attempt considers before giving up.
const maxSwapEntities = 4

// solveCtx carries one Solve call's mutable machinery: budgets, per-bucket
// candidate caches, scratch buffers, and the optional worker pool. All
// buffers are reused across attempts so the hot loop does not allocate.
type solveCtx struct {
	p        *Problem
	st       *state
	opt      Options
	rng      *sim.RNG
	view     *View
	res      *Result
	start    time.Time
	deadline time.Time

	// entCache[b] is bucket b's movable entities, sorted for BigFirst;
	// valid until a move touches b (see applyRaw).
	entCache      [][]EntityID
	entCacheValid []bool
	// shuffleScratch holds the shuffled copy when BigFirst is off.
	shuffleScratch []EntityID
	// pickScratch holds the equivalence-filtered, truncated pick.
	pickScratch []EntityID
	// seenGen[sigID] == gen marks equivalence classes already picked in
	// the current candidateEntities call (generation counter beats
	// clearing a map or slice each time).
	seenGen []int32
	gen     int32

	// The sampled (entity, target) grid of one fix attempt, flattened.
	preps      []prepared
	pairPrep   []int32
	pairTarget []BucketID

	pool *evalPool
}

// Solve improves the problem's assignment with local search and returns the
// result. The Problem's Entities' Bucket fields are updated in place to the
// final assignment.
func Solve(p *Problem, opt Options) *Result {
	if opt.CandidateTargets <= 0 {
		opt.CandidateTargets = 16
	}
	if opt.MaxEntitiesPerBucket <= 0 {
		opt.MaxEntitiesPerBucket = 16
	}
	if opt.Sampler == nil {
		opt.Sampler = RandomSampler(p)
	}
	st := newState(p)
	res := &Result{Initial: st.violations()}
	start := time.Now()
	ctx := &solveCtx{
		p:             p,
		st:            st,
		opt:           opt,
		rng:           sim.NewRNG(opt.Seed),
		view:          &View{st: st},
		res:           res,
		start:         start,
		entCache:      make([][]EntityID, len(p.Buckets)),
		entCacheValid: make([]bool, len(p.Buckets)),
		preps:         make([]prepared, opt.MaxEntitiesPerBucket),
	}
	for i := range ctx.preps {
		ctx.preps[i] = newPrepared(st)
	}
	if opt.TimeLimit > 0 {
		ctx.deadline = start.Add(opt.TimeLimit)
	}
	if opt.Parallel > 1 {
		ctx.pool = newEvalPool(st, opt.Parallel)
		defer ctx.pool.close()
	}

	ctx.phase1()
	ctx.phase2()

	res.Final = st.violations()
	res.Elapsed = time.Since(start)
	res.Assignment = append([]BucketID(nil), st.assignment...)
	for i := range p.Entities {
		p.Entities[i].Bucket = st.assignment[i]
	}
	return res
}

func (c *solveCtx) budgetLeft() bool {
	if c.opt.MoveBudget > 0 && len(c.res.Moves) >= c.opt.MoveBudget {
		return false
	}
	if c.opt.EvalBudget > 0 && c.res.Evaluated >= c.opt.EvalBudget {
		return false
	}
	if !c.deadline.IsZero() && time.Now().After(c.deadline) {
		return false
	}
	return true
}

// applyRaw commits a move and invalidates the touched buckets' candidate
// caches (the state's own aggregates update incrementally inside apply).
func (c *solveCtx) applyRaw(e EntityID, to BucketID) {
	from := c.st.assignment[e]
	c.st.apply(e, to)
	if from != Unassigned {
		c.entCacheValid[from] = false
	}
	c.entCacheValid[to] = false
}

func (c *solveCtx) applyMove(e EntityID, to BucketID) {
	c.res.Moves = append(c.res.Moves, Move{Entity: e, From: c.st.assignment[e], To: to})
	c.applyRaw(e, to)
}

// phase1 (emergency placement) assigns every unassigned entity to its best
// sampled feasible target. This is what the emergency mode (§5.1) does
// first — restore availability, then polish.
func (c *solveCtx) phase1() {
	st, opt := c.st, &c.opt
	if len(st.unassigned) == 0 {
		return
	}
	pending := make([]EntityID, 0, len(st.unassigned))
	for e := range st.unassigned {
		pending = append(pending, e)
	}
	sort.Slice(pending, func(i, j int) bool {
		a, b := pending[i], pending[j]
		la := c.p.Entities[a].Load[opt.BigFirstMetric]
		lb := c.p.Entities[b].Load[opt.BigFirstMetric]
		if la != lb {
			return la > lb
		}
		return a < b
	})
	pr := &c.preps[0]
	for _, e := range pending {
		if !c.budgetLeft() {
			break
		}
		st.prepare(pr, e)
		bestDelta := 0.0
		bestTarget := Unassigned
		for _, t := range opt.Sampler(c.rng, e, opt.CandidateTargets, c.view) {
			d, ok := st.evalTarget(pr, t)
			c.res.Evaluated++
			if ok && (bestTarget == Unassigned || d < bestDelta) {
				bestDelta, bestTarget = d, t
			}
		}
		if bestTarget != Unassigned {
			c.applyMove(e, bestTarget)
		}
	}
}

// phase2 runs hot-bucket repair epochs. Each iteration pulls the hottest
// unfrozen bucket from the incremental penalty heap (O(log B) instead of the
// former rescan-and-sort of all buckets) and chips away at it; buckets that
// resist improvement are frozen until their penalty changes. When no
// unfrozen bucket is hot the epoch ends: progress is reported, and the
// search either stops (nothing improved this epoch) or thaws everything and
// starts the next epoch.
func (c *solveCtx) phase2() {
	st, opt := c.st, &c.opt
	improved := false
	if c.budgetLeft() {
		c.res.Rounds++
	}
	for c.budgetLeft() {
		b, pen := st.hot.top()
		if b < 0 || pen <= improveEps {
			// Epoch boundary.
			c.fireProgress()
			if !improved {
				break
			}
			st.hot.unfreezeAll()
			b, pen = st.hot.top()
			if b < 0 || pen <= improveEps {
				break
			}
			c.res.Rounds++
			improved = false
		}
		_ = pen
		// Repeatedly chip away at this bucket until it stops improving.
		for attempt := 0; attempt < 64; attempt++ {
			if !c.budgetLeft() || st.hot.pen[b] <= improveEps {
				break
			}
			ents := c.candidateEntities(b)
			e, t, found := c.bestGridMove(ents, b)
			if found {
				c.applyMove(e, t)
				improved = true
				continue
			}
			// No single move helps; optionally try a swap.
			if opt.EnableSwap && len(ents) > 0 && c.trySwap(ents, b) {
				improved = true
				continue
			}
			st.hot.freeze(b)
			break
		}
	}
}

func (c *solveCtx) fireProgress() {
	if c.opt.Progress == nil {
		return
	}
	c.opt.Progress(ProgressInfo{
		Elapsed:    time.Since(c.start),
		Moves:      len(c.res.Moves),
		Evaluated:  c.res.Evaluated,
		Violations: c.st.violations(),
	})
}

// candidateEntities picks the entities of bucket b to evaluate this attempt:
// the bucket's cached movable list (sorted once per invalidation, not per
// attempt), deduplicated by equivalence class, truncated to
// MaxEntitiesPerBucket. The returned slice is scratch, valid until the next
// call.
func (c *solveCtx) candidateEntities(b BucketID) []EntityID {
	st, opt := c.st, &c.opt
	if !c.entCacheValid[b] {
		all := st.byBucket[b]
		cached := c.entCache[b][:0]
		for _, e := range all {
			if c.p.Entities[e].Movable {
				cached = append(cached, e)
			}
		}
		if opt.BigFirst {
			m := opt.BigFirstMetric
			sort.Slice(cached, func(i, j int) bool {
				li := c.p.Entities[cached[i]].Load[m]
				lj := c.p.Entities[cached[j]].Load[m]
				if li != lj {
					return li > lj
				}
				return cached[i] < cached[j]
			})
		}
		c.entCache[b] = cached
		c.entCacheValid[b] = true
	}
	ents := c.entCache[b]
	if !opt.BigFirst {
		// Random order is per-attempt, so shuffle a scratch copy and
		// leave the cache intact.
		c.shuffleScratch = append(c.shuffleScratch[:0], ents...)
		c.rng.Shuffle(len(c.shuffleScratch), func(i, j int) {
			c.shuffleScratch[i], c.shuffleScratch[j] = c.shuffleScratch[j], c.shuffleScratch[i]
		})
		ents = c.shuffleScratch
	}
	picked := c.pickScratch[:0]
	if opt.UseEquivalence {
		st.ensureSigs()
		if c.seenGen == nil {
			c.seenGen = make([]int32, st.numSig)
		}
		c.gen++
		for _, e := range ents {
			sid := st.sigID[e]
			if c.seenGen[sid] == c.gen {
				continue
			}
			c.seenGen[sid] = c.gen
			picked = append(picked, e)
			if len(picked) == opt.MaxEntitiesPerBucket {
				break
			}
		}
	} else {
		for _, e := range ents {
			picked = append(picked, e)
			if len(picked) == opt.MaxEntitiesPerBucket {
				break
			}
		}
	}
	c.pickScratch = picked
	return picked
}

// bestGridMove samples targets for every candidate entity (serially, so the
// RNG stream is identical in parallel mode), then evaluates the flattened
// (entity, target) grid — serially or on the worker pool — and returns the
// feasible pair with the most negative delta. Ties break toward the earliest
// pair, which makes the parallel reduction byte-identical to the serial scan.
func (c *solveCtx) bestGridMove(ents []EntityID, hotB BucketID) (EntityID, BucketID, bool) {
	st, opt := c.st, &c.opt
	c.pairPrep = c.pairPrep[:0]
	c.pairTarget = c.pairTarget[:0]
	for pi, e := range ents {
		st.prepare(&c.preps[pi], e)
		for _, t := range opt.Sampler(c.rng, e, opt.CandidateTargets, c.view) {
			if t == hotB {
				continue
			}
			c.pairPrep = append(c.pairPrep, int32(pi))
			c.pairTarget = append(c.pairTarget, t)
		}
	}
	n := len(c.pairTarget)
	c.res.Evaluated += n
	if n == 0 {
		return 0, Unassigned, false
	}
	bestIdx := -1
	if c.pool != nil {
		bestIdx = c.pool.run(c.preps, c.pairPrep, c.pairTarget)
	} else {
		bestDelta := -improveEps
		for i := 0; i < n; i++ {
			d, ok := st.evalTarget(&c.preps[c.pairPrep[i]], c.pairTarget[i])
			if ok && d < bestDelta {
				bestDelta, bestIdx = d, i
			}
		}
	}
	if bestIdx < 0 {
		return 0, Unassigned, false
	}
	return c.preps[c.pairPrep[bestIdx]].e, c.pairTarget[bestIdx], true
}

// trySwap attempts a two-way swap between an entity of hot bucket b and an
// entity of a sampled target bucket; it applies the swap and returns true if
// the combined delta improves the objective (§5.3: "it may consider two-way
// swapping of shards"). Up to maxSwapEntities candidates are tried — the
// first (largest) entity is often unmovable precisely because it is large.
// Every moveDelta call counts toward Result.Evaluated, including the ones
// whose tentative move is rolled back.
func (c *solveCtx) trySwap(ents []EntityID, b BucketID) bool {
	st, opt := c.st, &c.opt
	n := len(ents)
	if n > maxSwapEntities {
		n = maxSwapEntities
	}
	for _, e := range ents[:n] {
		for _, t := range opt.Sampler(c.rng, e, opt.CandidateTargets, c.view) {
			if t == b || len(st.byBucket[t]) == 0 {
				continue
			}
			peers := st.byBucket[t]
			e2 := peers[c.rng.Intn(len(peers))]
			if !c.p.Entities[e2].Movable || !c.p.Entities[e].Movable {
				continue
			}
			// Evaluate sequentially: move e off b first so e2 can take
			// its place; roll back if the pair does not improve. The
			// tentative window keeps frozen buckets frozen across
			// probe/rollback pairs (they net to zero change).
			d1, ok := st.moveDelta(e, t)
			c.res.Evaluated++
			if !ok {
				continue
			}
			st.hot.beginTentative()
			c.applyRaw(e, t)
			d2, ok2 := st.moveDelta(e2, b)
			c.res.Evaluated++
			if ok2 && d1+d2 < -improveEps {
				c.res.Moves = append(c.res.Moves, Move{Entity: e, From: b, To: t})
				c.res.Moves = append(c.res.Moves, Move{Entity: e2, From: t, To: b})
				c.applyRaw(e2, b)
				st.hot.commitTentative()
				return true
			}
			c.applyRaw(e, b) // roll back
			st.hot.abortTentative()
		}
	}
	return false
}

// ---------------------------------------------------------------------------
// Deterministic parallel candidate evaluation.

// evalPool fans evalTarget calls for one (entity, target) grid over a fixed
// set of worker goroutines. Workers stride the flattened pair array and keep
// a local (delta, index) argmin with a strict less-than test, so each worker
// ends at the earliest occurrence of its minimum; the final merge prefers
// the smaller delta and breaks ties toward the smaller index. That is
// exactly the serial scan's "first strict improvement wins" rule, so serial
// and parallel runs produce byte-identical Results.
//
// evalTarget only reads state (prepare runs serially beforehand), so the
// workers race on nothing.
type evalPool struct {
	st      *state
	workers int

	// Per-batch inputs, set by run before the workers start.
	preps      []prepared
	pairPrep   []int32
	pairTarget []BucketID

	best  []poolBest
	start []chan struct{}
	wg    sync.WaitGroup
}

// poolBest is one worker's argmin slot, padded to a cache line so workers
// do not false-share.
type poolBest struct {
	delta float64
	idx   int32
	_     [48]byte
}

func newEvalPool(st *state, workers int) *evalPool {
	p := &evalPool{
		st:      st,
		workers: workers,
		best:    make([]poolBest, workers),
		start:   make([]chan struct{}, workers),
	}
	for w := 0; w < workers; w++ {
		ch := make(chan struct{}, 1)
		p.start[w] = ch
		go p.worker(w, ch)
	}
	return p
}

func (p *evalPool) worker(w int, ch chan struct{}) {
	for range ch {
		best := poolBest{delta: -improveEps, idx: -1}
		for i := w; i < len(p.pairTarget); i += p.workers {
			d, ok := p.st.evalTarget(&p.preps[p.pairPrep[i]], p.pairTarget[i])
			if ok && d < best.delta {
				best.delta, best.idx = d, int32(i)
			}
		}
		p.best[w] = best
		p.wg.Done()
	}
}

// run evaluates the grid and returns the winning pair index, or -1 when no
// feasible pair improves.
func (p *evalPool) run(preps []prepared, pairPrep []int32, pairTarget []BucketID) int {
	p.preps, p.pairPrep, p.pairTarget = preps, pairPrep, pairTarget
	p.wg.Add(p.workers)
	for _, ch := range p.start {
		ch <- struct{}{}
	}
	p.wg.Wait()
	bestIdx := int32(-1)
	bestDelta := -improveEps
	for w := 0; w < p.workers; w++ {
		b := &p.best[w]
		if b.idx < 0 {
			continue
		}
		if b.delta < bestDelta || (b.delta == bestDelta && (bestIdx < 0 || b.idx < bestIdx)) {
			bestDelta, bestIdx = b.delta, b.idx
		}
	}
	return int(bestIdx)
}

func (p *evalPool) close() {
	for _, ch := range p.start {
		close(ch)
	}
}
