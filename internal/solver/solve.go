package solver

import (
	"sort"
	"time"

	"shardmanager/internal/sim"
)

// View gives samplers read access to the evolving assignment so they can
// prefer underloaded targets.
type View struct {
	st *state
}

// Utilization returns bucket b's current utilization for metric index m
// (load / capacity; +Inf-free: zero capacity with load returns 1e18).
func (v *View) Utilization(b BucketID, m int) float64 {
	c := v.st.p.Buckets[b].Capacity[m]
	l := v.st.bucketLoad[b][m]
	if c <= 0 {
		if l > 0 {
			return 1e18
		}
		return 0
	}
	return l / c
}

// Load returns bucket b's current total load for metric index m.
func (v *View) Load(b BucketID, m int) float64 { return v.st.bucketLoad[b][m] }

// Entities returns the number of entities currently on bucket b.
func (v *View) Entities(b BucketID) int { return len(v.st.byBucket[b]) }

// Sampler picks candidate target buckets for an entity. It may return fewer
// than k buckets; duplicates are tolerated.
type Sampler func(rng *sim.RNG, e EntityID, k int, view *View) []BucketID

// RandomSampler samples buckets uniformly — the baseline that Fig 22
// compares against grouped, utilization-aware sampling.
func RandomSampler(p *Problem) Sampler {
	n := len(p.Buckets)
	return func(rng *sim.RNG, _ EntityID, k int, _ *View) []BucketID {
		out := make([]BucketID, 0, k)
		for i := 0; i < k; i++ {
			out = append(out, BucketID(rng.Intn(n)))
		}
		return out
	}
}

// GroupedSampler groups buckets by their Group tag and draws candidates
// from every group, preferring underloaded buckets within each group. This
// is the domain-knowledge optimization of §5.3: sampling across groups has
// a much better chance of finding a target that satisfies region-preference
// and spread goals than uniform sampling.
func GroupedSampler(p *Problem, utilMetric int) Sampler {
	groups := make(map[string][]BucketID)
	var order []string
	for b := range p.Buckets {
		g := p.Buckets[b].Group
		if _, ok := groups[g]; !ok {
			order = append(order, g)
		}
		groups[g] = append(groups[g], BucketID(b))
	}
	return func(rng *sim.RNG, _ EntityID, k int, view *View) []BucketID {
		perGroup := (k + len(order) - 1) / len(order)
		if perGroup < 1 {
			perGroup = 1
		}
		out := make([]BucketID, 0, k)
		for _, g := range order {
			members := groups[g]
			// Draw 2x candidates, keep the least-utilized half:
			// cheap bias toward cold targets.
			for i := 0; i < perGroup; i++ {
				a := members[rng.Intn(len(members))]
				b := members[rng.Intn(len(members))]
				if view.Utilization(b, utilMetric) < view.Utilization(a, utilMetric) {
					a = b
				}
				out = append(out, a)
			}
		}
		return out
	}
}

// Options configure one Solve call.
type Options struct {
	// TimeLimit bounds wall-clock solving time; <= 0 means no limit.
	TimeLimit time.Duration
	// MoveBudget bounds the number of applied moves; <= 0 means no limit.
	MoveBudget int
	// CandidateTargets is how many target buckets to sample per entity
	// (default 16).
	CandidateTargets int
	// MaxEntitiesPerBucket is how many entities of a hot bucket to
	// evaluate per fix attempt (default 16).
	MaxEntitiesPerBucket int
	// BigFirst evaluates a hot bucket's largest entities first (§5.3:
	// "SM guides ReBalancer to evaluate large shards earlier").
	BigFirst bool
	// BigFirstMetric is the metric index used to order entities when
	// BigFirst is set.
	BigFirstMetric int
	// UseEquivalence skips equivalent entities on the same bucket
	// (§5.3: "reuses the computation for equivalent shards").
	UseEquivalence bool
	// EnableSwap tries two-way swaps when no single move improves.
	EnableSwap bool
	// Sampler picks candidate targets (default RandomSampler).
	Sampler Sampler
	// Seed drives the solver's deterministic RNG.
	Seed uint64
	// Progress, if set, is invoked after every search round with the
	// current violation counts; experiments use it to plot
	// violations-vs-time curves (Fig 21/22).
	Progress func(ProgressInfo)
}

// DefaultOptions returns the fully optimized configuration.
func DefaultOptions() Options {
	return Options{
		CandidateTargets:     16,
		MaxEntitiesPerBucket: 16,
		BigFirst:             true,
		UseEquivalence:       true,
		EnableSwap:           true,
		Seed:                 1,
	}
}

// ProgressInfo is a snapshot of solver progress.
type ProgressInfo struct {
	Elapsed    time.Duration
	Moves      int
	Violations ViolationCounts
}

// Move is one applied reassignment.
type Move struct {
	Entity EntityID
	From   BucketID
	To     BucketID
}

// Result reports the outcome of Solve.
type Result struct {
	// Moves in application order. An entity moved twice appears twice.
	Moves []Move
	// Assignment is the final bucket of every entity.
	Assignment []BucketID
	// Initial and Final violation counts.
	Initial, Final ViolationCounts
	// Rounds of hot-bucket scanning performed.
	Rounds int
	// Evaluated counts candidate move evaluations.
	Evaluated int
	// Elapsed wall-clock time.
	Elapsed time.Duration
}

const improveEps = 1e-9

// Solve improves the problem's assignment with local search and returns the
// result. The Problem's Entities' Bucket fields are updated in place to the
// final assignment.
func Solve(p *Problem, opt Options) *Result {
	if opt.CandidateTargets <= 0 {
		opt.CandidateTargets = 16
	}
	if opt.MaxEntitiesPerBucket <= 0 {
		opt.MaxEntitiesPerBucket = 16
	}
	if opt.Sampler == nil {
		opt.Sampler = RandomSampler(p)
	}
	rng := sim.NewRNG(opt.Seed)
	st := newState(p)
	view := &View{st: st}
	res := &Result{Initial: st.violations()}
	start := time.Now()
	deadline := time.Time{}
	if opt.TimeLimit > 0 {
		deadline = start.Add(opt.TimeLimit)
	}
	budgetLeft := func() bool {
		if opt.MoveBudget > 0 && len(res.Moves) >= opt.MoveBudget {
			return false
		}
		if !deadline.IsZero() && time.Now().After(deadline) {
			return false
		}
		return true
	}

	// candidateEntities picks the entities of bucket b to evaluate.
	candidateEntities := func(b BucketID) []EntityID {
		all := st.byBucket[b]
		picked := make([]EntityID, 0, opt.MaxEntitiesPerBucket)
		if opt.UseEquivalence {
			seen := make(map[string]struct{}, len(all))
			for _, e := range all {
				if !p.Entities[e].Movable {
					continue
				}
				sig := p.equivalenceSignature(e)
				if _, dup := seen[sig]; dup {
					continue
				}
				seen[sig] = struct{}{}
				picked = append(picked, e)
			}
		} else {
			for _, e := range all {
				if p.Entities[e].Movable {
					picked = append(picked, e)
				}
			}
		}
		if opt.BigFirst {
			m := opt.BigFirstMetric
			sort.Slice(picked, func(i, j int) bool {
				return p.Entities[picked[i]].Load[m] > p.Entities[picked[j]].Load[m]
			})
		} else {
			rng.Shuffle(len(picked), func(i, j int) {
				picked[i], picked[j] = picked[j], picked[i]
			})
		}
		if len(picked) > opt.MaxEntitiesPerBucket {
			picked = picked[:opt.MaxEntitiesPerBucket]
		}
		return picked
	}

	applyMove := func(e EntityID, to BucketID) {
		res.Moves = append(res.Moves, Move{Entity: e, From: st.assignment[e], To: to})
		st.apply(e, to)
	}

	// Phase 1 (emergency placement): assign every unassigned entity to
	// its best sampled feasible target. This is what the emergency mode
	// (§5.1) does first — restore availability, then polish.
	if len(st.unassigned) > 0 {
		pending := make([]EntityID, 0, len(st.unassigned))
		for e := range st.unassigned {
			pending = append(pending, e)
		}
		sort.Slice(pending, func(i, j int) bool {
			a, b := pending[i], pending[j]
			la := p.Entities[a].Load[opt.BigFirstMetric]
			lb := p.Entities[b].Load[opt.BigFirstMetric]
			if la != lb {
				return la > lb
			}
			return a < b
		})
		for _, e := range pending {
			if !budgetLeft() {
				break
			}
			bestDelta := 0.0
			bestTarget := Unassigned
			for _, t := range opt.Sampler(rng, e, opt.CandidateTargets, view) {
				d, ok := st.moveDelta(e, t)
				res.Evaluated++
				if ok && (bestTarget == Unassigned || d < bestDelta) {
					bestDelta, bestTarget = d, t
				}
			}
			if bestTarget != Unassigned {
				applyMove(e, bestTarget)
			}
		}
	}

	// Phase 2: hot-bucket repair rounds.
	for budgetLeft() {
		res.Rounds++
		type hot struct {
			b   BucketID
			pen float64
		}
		var hots []hot
		for b := range p.Buckets {
			if pen := st.bucketPenalty(BucketID(b)); pen > improveEps {
				hots = append(hots, hot{BucketID(b), pen})
			}
		}
		if len(hots) == 0 {
			break
		}
		sort.Slice(hots, func(i, j int) bool { return hots[i].pen > hots[j].pen })
		improvedAny := false
		for _, h := range hots {
			if !budgetLeft() {
				break
			}
			// Repeatedly chip away at this bucket until it stops
			// improving.
			for attempt := 0; attempt < 64; attempt++ {
				if !budgetLeft() || st.bucketPenalty(h.b) <= improveEps {
					break
				}
				ents := candidateEntities(h.b)
				bestDelta := -improveEps
				var bestEntity EntityID
				bestTarget := Unassigned
				for _, e := range ents {
					for _, t := range opt.Sampler(rng, e, opt.CandidateTargets, view) {
						if t == h.b {
							continue
						}
						d, ok := st.moveDelta(e, t)
						res.Evaluated++
						if ok && d < bestDelta {
							bestDelta, bestEntity, bestTarget = d, e, t
						}
					}
				}
				if bestTarget != Unassigned {
					applyMove(bestEntity, bestTarget)
					improvedAny = true
					continue
				}
				// No single move helps; optionally try a swap.
				if opt.EnableSwap && len(ents) > 0 && trySwap(st, view, rng, opt, res, ents, h.b) {
					improvedAny = true
					continue
				}
				break
			}
		}
		if opt.Progress != nil {
			opt.Progress(ProgressInfo{
				Elapsed:    time.Since(start),
				Moves:      len(res.Moves),
				Violations: st.violations(),
			})
		}
		if !improvedAny {
			break
		}
	}

	res.Final = st.violations()
	res.Elapsed = time.Since(start)
	res.Assignment = append([]BucketID(nil), st.assignment...)
	for i := range p.Entities {
		p.Entities[i].Bucket = st.assignment[i]
	}
	return res
}

// trySwap attempts a two-way swap between an entity of hot bucket b and an
// entity of a sampled target bucket; it applies the swap and returns true
// if the combined delta improves the objective (§5.3: "it may consider
// two-way swapping of shards").
func trySwap(st *state, view *View, rng *sim.RNG, opt Options, res *Result, ents []EntityID, b BucketID) bool {
	p := st.p
	e := ents[0] // largest (BigFirst) or random-first entity
	for _, t := range opt.Sampler(rng, e, opt.CandidateTargets, view) {
		if t == b || len(st.byBucket[t]) == 0 {
			continue
		}
		peers := st.byBucket[t]
		e2 := peers[rng.Intn(len(peers))]
		if !p.Entities[e2].Movable || !p.Entities[e].Movable {
			continue
		}
		// Evaluate sequentially: move e off b first so e2 can take
		// its place; roll back if the pair does not improve.
		d1, ok := st.moveDelta(e, t)
		res.Evaluated++
		if !ok {
			continue
		}
		st.apply(e, t)
		d2, ok2 := st.moveDelta(e2, b)
		res.Evaluated++
		if ok2 && d1+d2 < -improveEps {
			res.Moves = append(res.Moves, Move{Entity: e, From: b, To: t})
			res.Moves = append(res.Moves, Move{Entity: e2, From: t, To: b})
			st.apply(e2, b)
			return true
		}
		st.apply(e, b) // roll back
	}
	return false
}
