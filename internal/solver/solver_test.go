package solver

import (
	"fmt"
	"testing"
	"testing/quick"

	"shardmanager/internal/sim"
)

// buildBalanced builds nBuckets buckets of capacity 100 (single metric
// "cpu") and nEntities entities of the given load, all initially on bucket
// 0 (maximally imbalanced).
func buildSkewed(nBuckets, nEntities int, load float64) *Problem {
	p := NewProblem([]string{"cpu"})
	for i := 0; i < nBuckets; i++ {
		p.AddBucket(Bucket{
			Name:     fmt.Sprintf("b%d", i),
			Capacity: []float64{100},
			Props:    map[string]string{"region": fmt.Sprintf("r%d", i%2)},
			Group:    fmt.Sprintf("r%d", i%2),
		})
	}
	for i := 0; i < nEntities; i++ {
		p.AddEntity(Entity{
			Name:    fmt.Sprintf("e%d", i),
			Load:    []float64{load},
			Bucket:  0,
			Movable: true,
		})
	}
	return p
}

func TestSolveBalancesLoad(t *testing.T) {
	// 40 entities x 10 load on one of 8 buckets: bucket 0 holds 400/100.
	p := buildSkewed(8, 40, 10)
	p.AddConstraint(CapacitySpec{Metric: "cpu"})
	p.AddBalanceGoal(BalanceSpec{Metric: "cpu", UtilCap: 0.9, MaxDiff: 0.1, Weight: 1})
	res := Solve(p, DefaultOptions())
	if res.Initial.Total() == 0 {
		t.Fatal("initial state should violate")
	}
	if res.Final.Capacity != 0 || res.Final.Balance != 0 {
		t.Fatalf("final violations = %+v", res.Final)
	}
	// Mean utilization is 0.5; no bucket may exceed 0.6 (MaxDiff 0.1).
	st := newState(p)
	for b := range p.Buckets {
		u := st.bucketLoad[b][0] / 100
		if u > 0.6+1e-9 {
			t.Fatalf("bucket %d utilization %.2f > 0.6", b, u)
		}
	}
}

func TestSolveRespectsHardCapacity(t *testing.T) {
	// 2 buckets: one tiny (cap 10), one large. 5 entities of load 10 on
	// the large bucket; moving more than one to the tiny bucket would
	// overflow it.
	p := NewProblem([]string{"cpu"})
	big := p.AddBucket(Bucket{Name: "big", Capacity: []float64{100}})
	p.AddBucket(Bucket{Name: "tiny", Capacity: []float64{10}})
	for i := 0; i < 5; i++ {
		p.AddEntity(Entity{Name: fmt.Sprintf("e%d", i), Load: []float64{10}, Bucket: big, Movable: true})
	}
	p.AddConstraint(CapacitySpec{Metric: "cpu"})
	p.AddBalanceGoal(BalanceSpec{Metric: "cpu", MaxDiff: 0.01, Weight: 1})
	res := Solve(p, DefaultOptions())
	st := newState(p)
	if st.bucketLoad[1][0] > 10 {
		t.Fatalf("tiny bucket overloaded: %v", st.bucketLoad[1][0])
	}
	if res.Final.Capacity != 0 {
		t.Fatalf("capacity violations: %+v", res.Final)
	}
}

func TestSolvePlacesUnassignedEntities(t *testing.T) {
	p := NewProblem([]string{"cpu"})
	for i := 0; i < 4; i++ {
		p.AddBucket(Bucket{Name: fmt.Sprintf("b%d", i), Capacity: []float64{100}})
	}
	for i := 0; i < 20; i++ {
		p.AddEntity(Entity{Name: fmt.Sprintf("e%d", i), Load: []float64{5}, Bucket: Unassigned, Movable: true})
	}
	p.AddConstraint(CapacitySpec{Metric: "cpu"})
	p.AddBalanceGoal(BalanceSpec{Metric: "cpu", UtilCap: 0.9, Weight: 1})
	res := Solve(p, DefaultOptions())
	if res.Initial.Unassigned != 20 {
		t.Fatalf("initial unassigned = %d", res.Initial.Unassigned)
	}
	if res.Final.Unassigned != 0 {
		t.Fatalf("final unassigned = %d", res.Final.Unassigned)
	}
	for i := range p.Entities {
		if p.Entities[i].Bucket == Unassigned {
			t.Fatalf("entity %d still unassigned", i)
		}
	}
}

func TestSolveHonorsAffinity(t *testing.T) {
	p := buildSkewed(8, 16, 10)
	p.AddConstraint(CapacitySpec{Metric: "cpu"})
	p.AddBalanceGoal(BalanceSpec{Metric: "cpu", UtilCap: 0.9, MaxDiff: 0.2, Weight: 1})
	// Entities 0..7 prefer region r1 (odd buckets).
	for i := 0; i < 8; i++ {
		p.AddAffinityGoal(AffinityGoal{Scope: "region", Entity: EntityID(i), Domain: "r1", Weight: 5})
	}
	res := Solve(p, DefaultOptions())
	if res.Final.Affinity != 0 {
		t.Fatalf("affinity violations = %d", res.Final.Affinity)
	}
	for i := 0; i < 8; i++ {
		b := p.Entities[i].Bucket
		if p.Buckets[b].Props["region"] != "r1" {
			t.Fatalf("entity %d on region %s", i, p.Buckets[b].Props["region"])
		}
	}
}

func TestSolveSpreadsReplicas(t *testing.T) {
	// 3 replicas per group, 6 buckets across 3 regions; exclusion at
	// region scope should land each group's replicas in distinct regions.
	p := NewProblem([]string{"cpu"})
	for i := 0; i < 6; i++ {
		p.AddBucket(Bucket{
			Name:     fmt.Sprintf("b%d", i),
			Capacity: []float64{100},
			Props:    map[string]string{"region": fmt.Sprintf("r%d", i%3)},
		})
	}
	groups := make(map[EntityID]string)
	for g := 0; g < 5; g++ {
		for r := 0; r < 3; r++ {
			id := p.AddEntity(Entity{
				Name:    fmt.Sprintf("g%d-r%d", g, r),
				Load:    []float64{1},
				Bucket:  0, // all colocated initially
				Movable: true,
			})
			groups[id] = fmt.Sprintf("g%d", g)
		}
	}
	p.AddConstraint(CapacitySpec{Metric: "cpu"})
	p.AddExclusionGoal(ExclusionSpec{Scope: "region", Groups: groups, Weight: 10})
	res := Solve(p, DefaultOptions())
	if res.Final.Exclusion != 0 {
		t.Fatalf("exclusion violations = %d (initial %d)", res.Final.Exclusion, res.Initial.Exclusion)
	}
	// Verify each group touches 3 distinct regions.
	perGroup := make(map[string]map[string]bool)
	for id, g := range groups {
		b := p.Entities[id].Bucket
		if perGroup[g] == nil {
			perGroup[g] = map[string]bool{}
		}
		perGroup[g][p.Buckets[b].Props["region"]] = true
	}
	for g, regions := range perGroup {
		if len(regions) != 3 {
			t.Fatalf("group %s spans %d regions", g, len(regions))
		}
	}
}

func TestSolveDrainsMarkedBuckets(t *testing.T) {
	p := NewProblem([]string{"cpu"})
	draining := p.AddBucket(Bucket{Name: "draining", Capacity: []float64{100}, Draining: true})
	p.AddBucket(Bucket{Name: "ok1", Capacity: []float64{100}})
	p.AddBucket(Bucket{Name: "ok2", Capacity: []float64{100}})
	for i := 0; i < 10; i++ {
		p.AddEntity(Entity{Name: fmt.Sprintf("e%d", i), Load: []float64{5}, Bucket: draining, Movable: true})
	}
	p.AddConstraint(CapacitySpec{Metric: "cpu"})
	p.AddDrainGoal(10)
	res := Solve(p, DefaultOptions())
	if res.Final.Drain != 0 {
		t.Fatalf("drain violations = %d", res.Final.Drain)
	}
}

func TestPinnedEntitiesNeverMove(t *testing.T) {
	p := buildSkewed(4, 10, 10)
	p.Entities[0].Movable = false
	p.AddConstraint(CapacitySpec{Metric: "cpu"})
	p.AddBalanceGoal(BalanceSpec{Metric: "cpu", MaxDiff: 0.05, Weight: 1})
	res := Solve(p, DefaultOptions())
	for _, m := range res.Moves {
		if m.Entity == 0 {
			t.Fatal("pinned entity moved")
		}
	}
	if p.Entities[0].Bucket != 0 {
		t.Fatal("pinned entity reassigned")
	}
}

func TestMoveBudgetRespected(t *testing.T) {
	p := buildSkewed(8, 100, 5)
	p.AddConstraint(CapacitySpec{Metric: "cpu"})
	p.AddBalanceGoal(BalanceSpec{Metric: "cpu", MaxDiff: 0.05, Weight: 1})
	opt := DefaultOptions()
	opt.MoveBudget = 7
	res := Solve(p, opt)
	if len(res.Moves) > 7 {
		t.Fatalf("moves = %d, want <= 7", len(res.Moves))
	}
}

func TestSolveDeterministicForSeed(t *testing.T) {
	run := func() []Move {
		p := buildSkewed(8, 40, 10)
		p.AddConstraint(CapacitySpec{Metric: "cpu"})
		p.AddBalanceGoal(BalanceSpec{Metric: "cpu", UtilCap: 0.9, MaxDiff: 0.1, Weight: 1})
		return Solve(p, DefaultOptions()).Moves
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("move counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("move %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestDomainScopedCapacity(t *testing.T) {
	// Rack-scoped network capacity (Fig 13 statement 2): two buckets per
	// rack, each with network capacity 10; rack capacity is 20. Six
	// entities of load 5 would fit per-bucket (2x10... no: 3 entities
	// of 5 on one rack = 15 < 20 fits; 5 entities = 25 > 20 must spill).
	p := NewProblem([]string{"net"})
	for i := 0; i < 4; i++ {
		p.AddBucket(Bucket{
			Name:     fmt.Sprintf("b%d", i),
			Capacity: []float64{10},
			Props:    map[string]string{"rack": fmt.Sprintf("rk%d", i/2)},
		})
	}
	for i := 0; i < 6; i++ {
		p.AddEntity(Entity{Name: fmt.Sprintf("e%d", i), Load: []float64{5}, Bucket: Unassigned, Movable: true})
	}
	p.AddConstraint(CapacitySpec{Metric: "net", Scope: "rack"})
	res := Solve(p, DefaultOptions())
	if res.Final.Unassigned != 0 || res.Final.Capacity != 0 {
		t.Fatalf("final = %+v", res.Final)
	}
	// Each rack holds at most 4 entities (4*5=20).
	rack := map[string]float64{}
	for i := range p.Entities {
		b := p.Entities[i].Bucket
		rack[p.Buckets[b].Props["rack"]] += 5
	}
	for r, load := range rack {
		if load > 20 {
			t.Fatalf("rack %s load %v > 20", r, load)
		}
	}
}

func TestEquivalenceSignatureGroupsIdenticalEntities(t *testing.T) {
	p := buildSkewed(2, 4, 10)
	p.AddAffinityGoal(AffinityGoal{Scope: "region", Entity: 0, Domain: "r1", Weight: 1})
	sig0 := p.equivalenceSignature(0)
	sig1 := p.equivalenceSignature(1)
	sig2 := p.equivalenceSignature(2)
	if sig0 == sig1 {
		t.Fatal("entity with affinity should differ from plain entity")
	}
	if sig1 != sig2 {
		t.Fatal("identical entities should share a signature")
	}
}

func TestViolationCountsTotal(t *testing.T) {
	v := ViolationCounts{Capacity: 1, Balance: 2, Affinity: 3, Exclusion: 4, Drain: 5, Unassigned: 6}
	if v.Total() != 21 {
		t.Fatalf("Total = %d", v.Total())
	}
}

func TestProgressCallbackInvoked(t *testing.T) {
	p := buildSkewed(8, 40, 10)
	p.AddConstraint(CapacitySpec{Metric: "cpu"})
	p.AddBalanceGoal(BalanceSpec{Metric: "cpu", MaxDiff: 0.1, Weight: 1})
	opt := DefaultOptions()
	n := 0
	opt.Progress = func(pi ProgressInfo) {
		n++
		if pi.Moves < 0 {
			t.Error("negative moves")
		}
	}
	Solve(p, opt)
	if n == 0 {
		t.Fatal("progress never invoked")
	}
}

func TestGroupedSamplerCoversAllGroups(t *testing.T) {
	p := buildSkewed(8, 1, 1)
	st := newState(p)
	view := &View{st: st}
	s := GroupedSampler(p, 0)
	rng := sim.NewRNG(1)
	got := s(rng, 0, 8, view)
	groups := map[string]bool{}
	for _, b := range got {
		groups[p.Buckets[b].Group] = true
	}
	if !groups["r0"] || !groups["r1"] {
		t.Fatalf("sampler missed a group: %v", groups)
	}
}

func TestGroupedSamplerCapsAtK(t *testing.T) {
	// 8 groups, one bucket each; k=3 must return exactly 3 candidates
	// (the old sampler returned len(groups) = 8), and successive calls
	// must rotate through the groups so all of them get covered.
	p := NewProblem([]string{"cpu"})
	for i := 0; i < 8; i++ {
		p.AddBucket(Bucket{
			Name:     fmt.Sprintf("b%d", i),
			Capacity: []float64{100},
			Group:    fmt.Sprintf("g%d", i),
		})
	}
	p.AddEntity(Entity{Name: "e", Load: []float64{1}, Bucket: 0, Movable: true})
	st := newState(p)
	view := &View{st: st}
	s := GroupedSampler(p, 0)
	rng := sim.NewRNG(1)
	covered := map[string]bool{}
	for call := 0; call < 4; call++ {
		got := s(rng, 0, 3, view)
		if len(got) != 3 {
			t.Fatalf("call %d returned %d candidates, want 3", call, len(got))
		}
		for _, b := range got {
			covered[p.Buckets[b].Group] = true
		}
	}
	// 4 calls x 3 candidates with rotation must touch more groups than a
	// single call's 3; with one bucket per group, rotation covers 8.
	if len(covered) != 8 {
		t.Fatalf("rotation covered %d groups over 4 calls, want 8", len(covered))
	}
}

func TestEvalBudgetRespected(t *testing.T) {
	run := func() *Result {
		p := buildSkewed(16, 200, 5)
		p.AddConstraint(CapacitySpec{Metric: "cpu"})
		p.AddBalanceGoal(BalanceSpec{Metric: "cpu", MaxDiff: 0.05, Weight: 1})
		opt := DefaultOptions()
		opt.EvalBudget = 500
		return Solve(p, opt)
	}
	res := run()
	// The budget is checked per fix attempt, so one attempt may overshoot
	// by its grid (MaxEntitiesPerBucket * CandidateTargets) plus a swap
	// probe (maxSwapEntities * CandidateTargets * 2).
	if res.Evaluated >= 500+16*16+4*16*2+1 {
		t.Fatalf("evaluated %d, budget 500 overshot by more than one attempt", res.Evaluated)
	}
	unbudgeted := func() *Result {
		p := buildSkewed(16, 200, 5)
		p.AddConstraint(CapacitySpec{Metric: "cpu"})
		p.AddBalanceGoal(BalanceSpec{Metric: "cpu", MaxDiff: 0.05, Weight: 1})
		return Solve(p, DefaultOptions())
	}()
	if res.Evaluated >= unbudgeted.Evaluated {
		t.Fatalf("budgeted run evaluated %d >= unbudgeted %d", res.Evaluated, unbudgeted.Evaluated)
	}
	// Same seed, same budget -> identical stopping point.
	if again := run(); again.Evaluated != res.Evaluated || len(again.Moves) != len(res.Moves) {
		t.Fatalf("EvalBudget run not deterministic: %d/%d vs %d/%d evals/moves",
			res.Evaluated, len(res.Moves), again.Evaluated, len(again.Moves))
	}
}

// TestSwapConsidersMultipleEntities builds a state where the hot bucket's
// first (largest-by-tie-break) entity can never participate in an improving
// swap but its second one can: two full-ish buckets whose small entities
// each prefer the other's region, with balance penalties making the single
// moves non-improving. The old trySwap only tried ents[0] and deadlocked.
func TestSwapConsidersMultipleEntities(t *testing.T) {
	build := func() *Problem {
		p := NewProblem([]string{"cpu"})
		p.AddBucket(Bucket{Name: "A", Capacity: []float64{30}, Props: map[string]string{"region": "rA"}})
		p.AddBucket(Bucket{Name: "B", Capacity: []float64{30}, Props: map[string]string{"region": "rB"}})
		// e0 is gripped to A by a heavy affinity; e1 wants B.
		p.AddEntity(Entity{Name: "e0", Load: []float64{10}, Bucket: 0, Movable: true})
		p.AddEntity(Entity{Name: "e1", Load: []float64{10}, Bucket: 0, Movable: true})
		p.AddEntity(Entity{Name: "e2", Load: []float64{10}, Bucket: 1, Movable: true})
		p.AddEntity(Entity{Name: "e3", Load: []float64{10}, Bucket: 1, Movable: true})
		p.AddAffinityGoal(AffinityGoal{Scope: "region", Entity: 0, Domain: "rA", Weight: 50})
		p.AddAffinityGoal(AffinityGoal{Scope: "region", Entity: 1, Domain: "rB", Weight: 10})
		p.AddAffinityGoal(AffinityGoal{Scope: "region", Entity: 3, Domain: "rA", Weight: 10})
		p.AddConstraint(CapacitySpec{Metric: "cpu"})
		// Mean util 40/60 = 2/3; band 0.767. A lone extra entity pushes a
		// bucket to 1.0, costing (1.0-0.767)*30*2 = 14 > the 10 an
		// affinity fix gains, so no single move improves.
		p.AddBalanceGoal(BalanceSpec{Metric: "cpu", MaxDiff: 0.1, Weight: 2})
		return p
	}
	opt := DefaultOptions()
	res := Solve(build(), opt)
	if res.Final.Affinity != 0 {
		t.Fatalf("swap failed to fix affinity: final %+v, %d moves", res.Final, len(res.Moves))
	}
	// Sanity: without swaps the state is genuinely stuck.
	noSwap := opt
	noSwap.EnableSwap = false
	if res2 := Solve(build(), noSwap); res2.Final.Affinity == 0 {
		t.Fatal("expected the no-swap solver to stay stuck; test premise broken")
	}
}

func TestSolveMovesConserveEntitiesProperty(t *testing.T) {
	// Property: after solving a random instance, every entity is
	// assigned to a valid bucket and total load is conserved.
	if err := quick.Check(func(seed uint64) bool {
		r := sim.NewRNG(seed)
		nB := 2 + r.Intn(6)
		nE := 1 + r.Intn(30)
		p := NewProblem([]string{"cpu"})
		for i := 0; i < nB; i++ {
			p.AddBucket(Bucket{Name: fmt.Sprintf("b%d", i), Capacity: []float64{100}})
		}
		var total float64
		for i := 0; i < nE; i++ {
			l := 1 + float64(r.Intn(10))
			total += l
			p.AddEntity(Entity{Name: fmt.Sprintf("e%d", i), Load: []float64{l}, Bucket: BucketID(r.Intn(nB)), Movable: true})
		}
		p.AddConstraint(CapacitySpec{Metric: "cpu"})
		p.AddBalanceGoal(BalanceSpec{Metric: "cpu", MaxDiff: 0.1, Weight: 1})
		opt := DefaultOptions()
		opt.Seed = seed
		Solve(p, opt)
		st := newState(p)
		var after float64
		for b := range p.Buckets {
			after += st.bucketLoad[b][0]
		}
		return after == total
	}, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestBuilderPanics(t *testing.T) {
	p := NewProblem([]string{"cpu"})
	p.AddBucket(Bucket{Name: "b", Capacity: []float64{1}})
	for name, fn := range map[string]func(){
		"no metrics":      func() { NewProblem(nil) },
		"dup metrics":     func() { NewProblem([]string{"a", "a"}) },
		"bad bucket":      func() { p.AddBucket(Bucket{Name: "x", Capacity: []float64{1, 2}}) },
		"bad entity":      func() { p.AddEntity(Entity{Name: "e", Load: []float64{1, 2}}) },
		"bad assignment":  func() { p.AddEntity(Entity{Name: "e", Load: []float64{1}, Bucket: 99}) },
		"unknown metric":  func() { p.AddConstraint(CapacitySpec{Metric: "nope"}) },
		"balance weight":  func() { p.AddBalanceGoal(BalanceSpec{Metric: "cpu", UtilCap: 0.9}) },
		"balance no rule": func() { p.AddBalanceGoal(BalanceSpec{Metric: "cpu", Weight: 1}) },
		"affinity weight": func() { p.AddAffinityGoal(AffinityGoal{Entity: 0, Domain: "d"}) },
		"excl weight":     func() { p.AddExclusionGoal(ExclusionSpec{Scope: "r"}) },
		"drain weight":    func() { p.AddDrainGoal(0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			fn()
		}()
	}
}
