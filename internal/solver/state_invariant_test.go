package solver

import (
	"fmt"
	"math"
	"testing"
	"testing/quick"

	"shardmanager/internal/sim"
)

// randomProblem builds a random instance exercising every spec type.
func randomProblem(rng *sim.RNG) *Problem {
	nB := 3 + rng.Intn(6)
	nE := 5 + rng.Intn(40)
	p := NewProblem([]string{"cpu", "mem"})
	for i := 0; i < nB; i++ {
		p.AddBucket(Bucket{
			Name:     fmt.Sprintf("b%d", i),
			Capacity: []float64{50 + 100*rng.Float64(), 200},
			Props: map[string]string{
				"region": fmt.Sprintf("r%d", i%3),
				"rack":   fmt.Sprintf("rk%d", i%2),
			},
			Group:    fmt.Sprintf("r%d", i%3),
			Draining: rng.Intn(5) == 0,
		})
	}
	excl := make(map[EntityID]string)
	conf := make(map[EntityID]string)
	for i := 0; i < nE; i++ {
		b := BucketID(rng.Intn(nB))
		if rng.Intn(8) == 0 {
			b = Unassigned
		}
		id := p.AddEntity(Entity{
			Name:    fmt.Sprintf("e%d", i),
			Load:    []float64{1 + 9*rng.Float64(), 1 + 4*rng.Float64()},
			Bucket:  b,
			Movable: true,
		})
		if rng.Intn(2) == 0 {
			excl[id] = fmt.Sprintf("g%d", i%5)
		}
		if rng.Intn(3) == 0 {
			conf[id] = fmt.Sprintf("c%d", i%7)
		}
		if rng.Intn(3) == 0 {
			p.AddAffinityGoal(AffinityGoal{
				Scope: "region", Entity: id,
				Domain: fmt.Sprintf("r%d", rng.Intn(3)), Weight: 1 + rng.Float64(),
			})
		}
	}
	p.AddConstraint(CapacitySpec{Metric: "cpu"})
	p.AddConstraint(CapacitySpec{Metric: "mem", Scope: "rack"})
	p.AddBalanceGoal(BalanceSpec{Metric: "cpu", UtilCap: 0.9, MaxDiff: 0.1, Weight: 1})
	p.AddBalanceGoal(BalanceSpec{Metric: "mem", Scope: "region", MaxDiff: 0.2, Weight: 0.5})
	if len(excl) > 0 {
		p.AddExclusionGoal(ExclusionSpec{Scope: "region", Groups: excl, Weight: 3})
	}
	if len(conf) > 0 {
		p.AddConflict(ExclusionSpec{Scope: ScopeBucket, Groups: conf})
	}
	p.AddDrainGoal(2)
	return p
}

// statesEqual compares incremental aggregate state against a from-scratch
// rebuild.
func statesEqual(t *testing.T, got, want *state) bool {
	t.Helper()
	aggEqual := func(a, b aggState) bool {
		for k, v := range b.load {
			if math.Abs(a.load[k]-v) > 1e-6 {
				return false
			}
		}
		for k, v := range a.load {
			if math.Abs(b.load[k]-v) > 1e-6 {
				return false
			}
		}
		return true
	}
	for i := range want.capStates {
		if !aggEqual(got.capStates[i], want.capStates[i]) {
			t.Logf("capState %d diverged", i)
			return false
		}
	}
	for i := range want.balStates {
		if !aggEqual(got.balStates[i], want.balStates[i]) {
			t.Logf("balState %d diverged", i)
			return false
		}
	}
	countsEqual := func(a, b map[string]int) bool {
		for k, v := range b {
			if a[k] != v {
				return false
			}
		}
		for k, v := range a {
			if v != 0 && b[k] != v {
				return false
			}
		}
		return true
	}
	for i := range want.exclCounts {
		if !countsEqual(got.exclCounts[i], want.exclCounts[i]) {
			t.Logf("exclCounts %d diverged", i)
			return false
		}
	}
	for i := range want.confCounts {
		if !countsEqual(got.confCounts[i], want.confCounts[i]) {
			t.Logf("confCounts %d diverged", i)
			return false
		}
	}
	for b := range want.bucketLoad {
		for m := range want.bucketLoad[b] {
			if math.Abs(got.bucketLoad[b][m]-want.bucketLoad[b][m]) > 1e-6 {
				t.Logf("bucketLoad[%d][%d] diverged", b, m)
				return false
			}
		}
	}
	return true
}

// TestIncrementalStateMatchesRebuild is the solver's core invariant: after
// any sequence of applied moves, the incrementally maintained aggregates
// equal a from-scratch rebuild — the property that makes O(1) move deltas
// trustworthy (the paper's objective-tree optimization).
func TestIncrementalStateMatchesRebuild(t *testing.T) {
	if err := quick.Check(func(seed uint64) bool {
		rng := sim.NewRNG(seed)
		p := randomProblem(rng)
		st := newState(p)
		nB := len(p.Buckets)
		for step := 0; step < 100; step++ {
			e := EntityID(rng.Intn(len(p.Entities)))
			target := BucketID(rng.Intn(nB))
			if st.assignment[e] == target {
				continue
			}
			st.apply(e, target)
			// Keep Problem's view in sync for the rebuild.
			p.Entities[e].Bucket = target
		}
		fresh := newState(p)
		return statesEqual(t, st, fresh)
	}, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestMoveDeltaMatchesAppliedObjective checks that moveDelta's prediction
// equals the actual objective change measured by full evaluation.
func TestMoveDeltaMatchesAppliedObjective(t *testing.T) {
	objective := func(st *state) float64 {
		var total float64
		for i := range st.p.capacitySpecs {
			a := &st.capStates[i]
			for k, load := range a.load {
				total += capacityPenalty(a, k, load)
			}
		}
		for i := range st.p.balanceSpecs {
			spec := st.p.balanceSpecs[i]
			a := &st.balStates[i]
			for k, load := range a.load {
				total += balancePenalty(spec, a, k, load)
			}
		}
		for e := range st.p.Entities {
			b := st.assignment[e]
			if b == Unassigned {
				total += unassignedPenalty
				continue
			}
			total += st.affinityPenalty(EntityID(e), b) + st.drainPenalty(b)
		}
		for i := range st.p.exclusionSpecs {
			w := st.p.exclusionSpecs[i].Weight
			for _, n := range st.exclCounts[i] {
				if n > 1 {
					total += w * float64(n-1)
				}
			}
		}
		return total
	}
	if err := quick.Check(func(seed uint64) bool {
		rng := sim.NewRNG(seed)
		p := randomProblem(rng)
		st := newState(p)
		for step := 0; step < 50; step++ {
			e := EntityID(rng.Intn(len(p.Entities)))
			target := BucketID(rng.Intn(len(p.Buckets)))
			delta, ok := st.moveDelta(e, target)
			if !ok {
				continue
			}
			before := objective(st)
			st.apply(e, target)
			after := objective(st)
			// Tolerance scales with the objective's magnitude: the
			// unassigned penalty is 1e12, so the subtraction loses
			// up to ~1e-4 absolute precision.
			tol := 1e-9 * (math.Abs(before) + math.Abs(delta) + 1)
			if math.Abs((after-before)-delta) > tol {
				t.Logf("seed %d step %d: predicted %v actual %v", seed, step, delta, after-before)
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// TestConflictFeasibilityNeverColocates: moveDelta must refuse any move
// that would colocate two hard-conflict group members.
func TestConflictFeasibilityNeverColocates(t *testing.T) {
	if err := quick.Check(func(seed uint64) bool {
		rng := sim.NewRNG(seed)
		p := NewProblem([]string{"cpu"})
		nB := 2 + rng.Intn(4)
		for i := 0; i < nB; i++ {
			p.AddBucket(Bucket{Name: fmt.Sprintf("b%d", i), Capacity: []float64{1000}})
		}
		groups := make(map[EntityID]string)
		for i := 0; i < 12; i++ {
			id := p.AddEntity(Entity{
				Name: fmt.Sprintf("e%d", i), Load: []float64{1},
				Bucket: Unassigned, Movable: true,
			})
			groups[id] = fmt.Sprintf("g%d", i%4)
		}
		p.AddConstraint(CapacitySpec{Metric: "cpu"})
		p.AddConflict(ExclusionSpec{Scope: ScopeBucket, Groups: groups})
		st := newState(p)
		for step := 0; step < 200; step++ {
			e := EntityID(rng.Intn(len(p.Entities)))
			target := BucketID(rng.Intn(nB))
			if _, ok := st.moveDelta(e, target); ok {
				st.apply(e, target)
			}
		}
		// No bucket may hold two members of the same group.
		for b := range p.Buckets {
			seen := map[string]bool{}
			for _, e := range st.byBucket[b] {
				g := groups[e]
				if seen[g] {
					return false
				}
				seen[g] = true
			}
		}
		return true
	}, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestSolveIdempotentOnCleanState: solving an already-violation-free
// problem must produce no moves.
func TestSolveIdempotentOnCleanState(t *testing.T) {
	p := buildSkewed(8, 40, 10)
	p.AddConstraint(CapacitySpec{Metric: "cpu"})
	p.AddBalanceGoal(BalanceSpec{Metric: "cpu", UtilCap: 0.9, MaxDiff: 0.1, Weight: 1})
	first := Solve(p, DefaultOptions())
	if first.Final.Total() != 0 {
		t.Fatalf("first solve left violations: %+v", first.Final)
	}
	second := Solve(p, DefaultOptions())
	if len(second.Moves) != 0 {
		t.Fatalf("second solve produced %d moves on a clean state", len(second.Moves))
	}
	if second.Rounds > 1 {
		t.Fatalf("second solve took %d rounds, want immediate convergence", second.Rounds)
	}
}
