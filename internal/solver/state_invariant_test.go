package solver

import (
	"fmt"
	"math"
	"testing"
	"testing/quick"

	"shardmanager/internal/sim"
)

// randomProblem builds a random instance exercising every spec type.
func randomProblem(rng *sim.RNG) *Problem {
	nB := 3 + rng.Intn(6)
	nE := 5 + rng.Intn(40)
	p := NewProblem([]string{"cpu", "mem"})
	for i := 0; i < nB; i++ {
		p.AddBucket(Bucket{
			Name:     fmt.Sprintf("b%d", i),
			Capacity: []float64{50 + 100*rng.Float64(), 200},
			Props: map[string]string{
				"region": fmt.Sprintf("r%d", i%3),
				"rack":   fmt.Sprintf("rk%d", i%2),
			},
			Group:    fmt.Sprintf("r%d", i%3),
			Draining: rng.Intn(5) == 0,
		})
	}
	excl := make(map[EntityID]string)
	conf := make(map[EntityID]string)
	for i := 0; i < nE; i++ {
		b := BucketID(rng.Intn(nB))
		if rng.Intn(8) == 0 {
			b = Unassigned
		}
		id := p.AddEntity(Entity{
			Name:    fmt.Sprintf("e%d", i),
			Load:    []float64{1 + 9*rng.Float64(), 1 + 4*rng.Float64()},
			Bucket:  b,
			Movable: true,
		})
		if rng.Intn(2) == 0 {
			excl[id] = fmt.Sprintf("g%d", i%5)
		}
		if rng.Intn(3) == 0 {
			conf[id] = fmt.Sprintf("c%d", i%7)
		}
		if rng.Intn(3) == 0 {
			p.AddAffinityGoal(AffinityGoal{
				Scope: "region", Entity: id,
				Domain: fmt.Sprintf("r%d", rng.Intn(3)), Weight: 1 + rng.Float64(),
			})
		}
	}
	p.AddConstraint(CapacitySpec{Metric: "cpu"})
	p.AddConstraint(CapacitySpec{Metric: "mem", Scope: "rack"})
	p.AddBalanceGoal(BalanceSpec{Metric: "cpu", UtilCap: 0.9, MaxDiff: 0.1, Weight: 1})
	p.AddBalanceGoal(BalanceSpec{Metric: "mem", Scope: "region", MaxDiff: 0.2, Weight: 0.5})
	if len(excl) > 0 {
		p.AddExclusionGoal(ExclusionSpec{Scope: "region", Groups: excl, Weight: 3})
	}
	if len(conf) > 0 {
		p.AddConflict(ExclusionSpec{Scope: ScopeBucket, Groups: conf})
	}
	p.AddDrainGoal(2)
	return p
}

// statesEqual compares incremental aggregate state against a from-scratch
// rebuild.
func statesEqual(t *testing.T, got, want *state) bool {
	t.Helper()
	for si := range want.specs {
		g, w := &got.specs[si], &want.specs[si]
		for d := range w.load {
			if math.Abs(g.load[d]-w.load[d]) > 1e-6 {
				t.Logf("spec %d domain %d load diverged: %v vs %v", si, d, g.load[d], w.load[d])
				return false
			}
		}
	}
	for xi := range want.excls {
		g, w := &got.excls[xi], &want.excls[xi]
		for k, mem := range w.members {
			if len(g.members[k]) != len(mem) {
				t.Logf("excl %d key %d member count diverged", xi, k)
				return false
			}
		}
		for k, mem := range g.members {
			if len(mem) != 0 && len(w.members[k]) != len(mem) {
				t.Logf("excl %d key %d member count diverged", xi, k)
				return false
			}
		}
	}
	for ci := range want.confs {
		g, w := &got.confs[ci], &want.confs[ci]
		for k, n := range w.counts {
			if g.counts[k] != n {
				t.Logf("conf %d key %d count diverged", ci, k)
				return false
			}
		}
		for k, n := range g.counts {
			if n != 0 && w.counts[k] != n {
				t.Logf("conf %d key %d count diverged", ci, k)
				return false
			}
		}
	}
	for b := range want.bucketLoad {
		for m := range want.bucketLoad[b] {
			if math.Abs(got.bucketLoad[b][m]-want.bucketLoad[b][m]) > 1e-6 {
				t.Logf("bucketLoad[%d][%d] diverged", b, m)
				return false
			}
		}
	}
	return true
}

// TestIncrementalStateMatchesRebuild is the solver's core invariant: after
// any sequence of applied moves, the incrementally maintained aggregates
// equal a from-scratch rebuild — the property that makes O(1) move deltas
// trustworthy (the paper's objective-tree optimization).
func TestIncrementalStateMatchesRebuild(t *testing.T) {
	if err := quick.Check(func(seed uint64) bool {
		rng := sim.NewRNG(seed)
		p := randomProblem(rng)
		st := newState(p)
		nB := len(p.Buckets)
		for step := 0; step < 100; step++ {
			e := EntityID(rng.Intn(len(p.Entities)))
			target := BucketID(rng.Intn(nB))
			if st.assignment[e] == target {
				continue
			}
			st.apply(e, target)
			// Keep Problem's view in sync for the rebuild.
			p.Entities[e].Bucket = target
		}
		fresh := newStateFresh(p)
		return statesEqual(t, st, fresh)
	}, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// newStateFresh rebuilds solver state with a fresh domain table, as a solver
// entry point would; reusing p's existing (lazily grown) table is fine too,
// but a fresh one also re-exercises interning.
func newStateFresh(p *Problem) *state {
	p.domTable = nil
	return newState(p)
}

// TestHotSetMatchesRecompute drives 1,000 random applied moves and then
// cross-checks every incrementally maintained quantity against a from-scratch
// recomputation: per-bucket penalties (the hot heap), violations(), and the
// aggregate state. This is the invariant that lets Phase 2 trust the heap
// instead of rescanning buckets.
func TestHotSetMatchesRecompute(t *testing.T) {
	for seed := uint64(1); seed <= 8; seed++ {
		rng := sim.NewRNG(seed)
		p := randomProblem(rng)
		st := newState(p)
		nB := len(p.Buckets)
		for step := 0; step < 1000; step++ {
			e := EntityID(rng.Intn(len(p.Entities)))
			target := BucketID(rng.Intn(nB))
			if st.assignment[e] == target {
				continue
			}
			st.apply(e, target)
			p.Entities[e].Bucket = target
		}
		fresh := newStateFresh(p)
		if !statesEqual(t, st, fresh) {
			t.Fatalf("seed %d: aggregates diverged from rebuild", seed)
		}
		if sv, fv := st.violations(), fresh.violations(); sv != fv {
			t.Fatalf("seed %d: violations diverged: %+v vs %+v", seed, sv, fv)
		}
		for b := 0; b < nB; b++ {
			got := st.hot.pen[b]
			want := fresh.bucketPenalty(BucketID(b))
			// Incremental penalties accumulate float error
			// proportional to the magnitudes that flowed through.
			tol := 1e-6 * (math.Abs(want) + 1)
			if math.Abs(got-want) > tol {
				t.Fatalf("seed %d: hot pen[%d] = %v, recomputed %v", seed, b, got, want)
			}
		}
		// The heap must agree with its own pen array: the reported top
		// is the max over unfrozen buckets (none are frozen here).
		topB, topPen := st.hot.top()
		for b := 0; b < nB; b++ {
			if st.hot.pen[b] > topPen {
				t.Fatalf("seed %d: heap top %d (%v) < pen[%d]=%v", seed, topB, topPen, b, st.hot.pen[b])
			}
		}
	}
}

// TestHotSetFreezeUnfreeze exercises the freeze bookkeeping directly.
func TestHotSetFreezeUnfreeze(t *testing.T) {
	h := newHotSet(5)
	for b, pen := range []float64{3, 9, 1, 9, 0} {
		h.pen[b] = pen
	}
	h.init()
	if b, pen := h.top(); b != 1 || pen != 9 {
		t.Fatalf("top = %d/%v, want 1/9 (tie breaks to lower ID)", b, pen)
	}
	h.freeze(1)
	if b, _ := h.top(); b != 3 {
		t.Fatalf("top after freeze = %d, want 3", b)
	}
	h.freeze(3)
	if b, _ := h.top(); b != 0 {
		t.Fatalf("top after freezes = %d, want 0", b)
	}
	// A frozen bucket whose penalty changes thaws automatically.
	h.add(3, -1)
	if b, pen := h.top(); b != 3 || pen != 8 {
		t.Fatalf("top after add to frozen = %d/%v, want 3/8", b, pen)
	}
	h.unfreezeAll() // brings bucket 1 (pen 9) back
	if b, pen := h.top(); b != 1 || pen != 9 {
		t.Fatalf("top after unfreezeAll = %d/%v, want 1/9", b, pen)
	}
	h.add(1, -9)
	h.add(3, -8)
	if b, pen := h.top(); b != 0 || pen != 3 {
		t.Fatalf("top after drain = %d/%v, want 0/3", b, pen)
	}
}

// TestMoveDeltaMatchesAppliedObjective checks that moveDelta's prediction
// equals the actual objective change measured by full evaluation.
func TestMoveDeltaMatchesAppliedObjective(t *testing.T) {
	objective := func(st *state) float64 {
		var total float64
		for si := range st.specs {
			sp := &st.specs[si]
			for d := range sp.load {
				total += sp.domPenalty(int32(d), sp.load[d])
			}
		}
		for e := range st.p.Entities {
			b := st.assignment[e]
			if b == Unassigned {
				total += unassignedPenalty
				continue
			}
			total += st.affinityPenalty(EntityID(e), b) + st.drainPenalty(b)
		}
		for xi := range st.excls {
			ex := &st.excls[xi]
			for _, mem := range ex.members {
				if len(mem) > 1 {
					total += ex.weight * float64(len(mem)-1)
				}
			}
		}
		return total
	}
	if err := quick.Check(func(seed uint64) bool {
		rng := sim.NewRNG(seed)
		p := randomProblem(rng)
		st := newState(p)
		for step := 0; step < 50; step++ {
			e := EntityID(rng.Intn(len(p.Entities)))
			target := BucketID(rng.Intn(len(p.Buckets)))
			delta, ok := st.moveDelta(e, target)
			if !ok {
				continue
			}
			before := objective(st)
			st.apply(e, target)
			after := objective(st)
			// Tolerance scales with the objective's magnitude: the
			// unassigned penalty is 1e12, so the subtraction loses
			// up to ~1e-4 absolute precision.
			tol := 1e-9 * (math.Abs(before) + math.Abs(delta) + 1)
			if math.Abs((after-before)-delta) > tol {
				t.Logf("seed %d step %d: predicted %v actual %v", seed, step, delta, after-before)
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// TestMoveDeltaAllocFree: the hot loop's contract is zero allocations per
// candidate evaluation.
func TestMoveDeltaAllocFree(t *testing.T) {
	rng := sim.NewRNG(7)
	p := randomProblem(rng)
	st := newState(p)
	nE, nB := len(p.Entities), len(p.Buckets)
	i := 0
	allocs := testing.AllocsPerRun(200, func() {
		e := EntityID(i % nE)
		b := BucketID((i * 7) % nB)
		st.moveDelta(e, b)
		i++
	})
	if allocs > 0 {
		t.Fatalf("moveDelta allocates %.1f times per call, want 0", allocs)
	}
}

// TestConflictFeasibilityNeverColocates: moveDelta must refuse any move
// that would colocate two hard-conflict group members.
func TestConflictFeasibilityNeverColocates(t *testing.T) {
	if err := quick.Check(func(seed uint64) bool {
		rng := sim.NewRNG(seed)
		p := NewProblem([]string{"cpu"})
		nB := 2 + rng.Intn(4)
		for i := 0; i < nB; i++ {
			p.AddBucket(Bucket{Name: fmt.Sprintf("b%d", i), Capacity: []float64{1000}})
		}
		groups := make(map[EntityID]string)
		for i := 0; i < 12; i++ {
			id := p.AddEntity(Entity{
				Name: fmt.Sprintf("e%d", i), Load: []float64{1},
				Bucket: Unassigned, Movable: true,
			})
			groups[id] = fmt.Sprintf("g%d", i%4)
		}
		p.AddConstraint(CapacitySpec{Metric: "cpu"})
		p.AddConflict(ExclusionSpec{Scope: ScopeBucket, Groups: groups})
		st := newState(p)
		for step := 0; step < 200; step++ {
			e := EntityID(rng.Intn(len(p.Entities)))
			target := BucketID(rng.Intn(nB))
			if _, ok := st.moveDelta(e, target); ok {
				st.apply(e, target)
			}
		}
		// No bucket may hold two members of the same group.
		for b := range p.Buckets {
			seen := map[string]bool{}
			for _, e := range st.byBucket[b] {
				g := groups[e]
				if seen[g] {
					return false
				}
				seen[g] = true
			}
		}
		return true
	}, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestSolveIdempotentOnCleanState: solving an already-violation-free
// problem must produce no moves.
func TestSolveIdempotentOnCleanState(t *testing.T) {
	p := buildSkewed(8, 40, 10)
	p.AddConstraint(CapacitySpec{Metric: "cpu"})
	p.AddBalanceGoal(BalanceSpec{Metric: "cpu", UtilCap: 0.9, MaxDiff: 0.1, Weight: 1})
	first := Solve(p, DefaultOptions())
	if first.Final.Total() != 0 {
		t.Fatalf("first solve left violations: %+v", first.Final)
	}
	second := Solve(p, DefaultOptions())
	if len(second.Moves) != 0 {
		t.Fatalf("second solve produced %d moves on a clean state", len(second.Moves))
	}
	if second.Rounds > 1 {
		t.Fatalf("second solve took %d rounds, want immediate convergence", second.Rounds)
	}
}

// TestParallelMatchesSerial: the deterministic parallel evaluation mode must
// produce byte-identical results — same moves, same assignment, same
// violation counts, same evaluation count — for any seed.
func TestParallelMatchesSerial(t *testing.T) {
	for seed := uint64(1); seed <= 10; seed++ {
		build := func() *Problem { return randomProblem(sim.NewRNG(seed)) }
		optS := DefaultOptions()
		optS.Seed = seed
		optS.Sampler = nil // per-problem default
		serial := Solve(build(), optS)

		optP := optS
		optP.Parallel = 3
		parallel := Solve(build(), optP)

		if len(serial.Moves) != len(parallel.Moves) {
			t.Fatalf("seed %d: move counts differ: %d vs %d", seed, len(serial.Moves), len(parallel.Moves))
		}
		for i := range serial.Moves {
			if serial.Moves[i] != parallel.Moves[i] {
				t.Fatalf("seed %d: move %d differs: %+v vs %+v", seed, i, serial.Moves[i], parallel.Moves[i])
			}
		}
		for i := range serial.Assignment {
			if serial.Assignment[i] != parallel.Assignment[i] {
				t.Fatalf("seed %d: assignment of entity %d differs", seed, i)
			}
		}
		if serial.Initial != parallel.Initial || serial.Final != parallel.Final {
			t.Fatalf("seed %d: violations differ: %+v/%+v vs %+v/%+v",
				seed, serial.Initial, serial.Final, parallel.Initial, parallel.Final)
		}
		if serial.Evaluated != parallel.Evaluated || serial.Rounds != parallel.Rounds {
			t.Fatalf("seed %d: evaluated/rounds differ: %d/%d vs %d/%d",
				seed, serial.Evaluated, serial.Rounds, parallel.Evaluated, parallel.Rounds)
		}
	}
}

// TestAdoptDomainTableSharing: a table built by one problem serves a clone
// with identical buckets, and panics on a mismatched bucket set.
func TestAdoptDomainTableSharing(t *testing.T) {
	p1 := buildSkewed(4, 10, 5)
	p1.AddConstraint(CapacitySpec{Metric: "cpu"})
	p1.AddBalanceGoal(BalanceSpec{Metric: "cpu", Scope: "region", MaxDiff: 0.1, Weight: 1})
	newState(p1) // populates p1's table for bucket and region scopes

	p2 := buildSkewed(4, 10, 5)
	p2.AddConstraint(CapacitySpec{Metric: "cpu"})
	p2.AddBalanceGoal(BalanceSpec{Metric: "cpu", Scope: "region", MaxDiff: 0.1, Weight: 1})
	p2.AdoptDomainTable(p1.DomainTable())
	// cpu@bucket (the constraint) and cpu@region (the balance goal) stay
	// separate merged specs; both must resolve via the adopted table.
	st := newState(p2)
	if len(st.specs) != 2 || st.specs[0].dom.numDomains() == 0 || st.specs[1].dom.numDomains() == 0 {
		t.Fatalf("state built on adopted table looks wrong: %d specs", len(st.specs))
	}
	if p2.DomainTable() != p1.DomainTable() {
		t.Fatal("adopted table not shared")
	}

	p3 := buildSkewed(5, 10, 5) // different bucket count
	defer func() {
		if recover() == nil {
			t.Fatal("adopting a mismatched table should panic")
		}
	}()
	p3.AdoptDomainTable(p1.DomainTable())
}
