// Package taskcontroller implements SM's TaskController (§4.1-§4.2): the
// component that speaks the TaskControl protocol with one or more regional
// cluster managers and decides *when* container lifecycle operations may
// safely execute.
//
// For negotiable events (software upgrades, auto-scaling) the TaskController
// never approves unsafe operations: it enforces the application's
// preconfigured policy — whether to drain shards out of impacted containers,
// a global cap on concurrent container operations, and a per-shard cap on
// simultaneously unavailable replicas — counting replicas that are already
// unavailable due to ongoing unplanned outages. Because one TaskController
// receives notifications from every involved cluster manager, it coordinates
// operations across geo-distributed regions: two regions restarting two
// containers that happen to host two replicas of the same shard will have
// one of them delayed (§2.3, §4.1).
//
// For non-negotiable events (hardware maintenance, kernel upgrades) it
// receives advance notice and proactively drains or demotes replicas before
// the event starts (§4.2).
package taskcontroller

import (
	"sort"
	"time"

	"shardmanager/internal/cluster"
	"shardmanager/internal/metrics"
	"shardmanager/internal/shard"
	"shardmanager/internal/sim"
	"shardmanager/internal/topology"
)

// ShardStateProvider is the orchestrator-facing dependency: the
// TaskController is "guided by SM's knowledge of the shard-to-container
// assignment" (§4.1).
type ShardStateProvider interface {
	// AliveReplicas returns, for each shard with a replica on the
	// server, how many replicas are currently alive.
	AliveReplicas(server shard.ServerID) map[shard.ID]int
	// TotalReplicas returns the configured replica count of a shard.
	TotalReplicas(s shard.ID) int
	// ShardsOnServer returns how many replicas the server holds.
	ShardsOnServer(server shard.ServerID) int
	// Drain moves every replica off the server, then calls onDone.
	Drain(server shard.ServerID, onDone func())
	// CancelDrain clears the draining mark.
	CancelDrain(server shard.ServerID)
	// DemotePrimaries demotes the server's primaries, promoting
	// secondaries elsewhere.
	DemotePrimaries(server shard.ServerID)
}

// Policy is the application's preconfigured TaskController policy (§4.1).
type Policy struct {
	// DrainOnRestart drains shards out of a container before approving
	// its restart/stop/move (Fig 8: most applications drain primaries).
	DrainOnRestart bool
	// MaxConcurrentOps is the global cap on concurrent container
	// operations across all regions (e.g. 10% of containers). <= 0
	// means 1.
	MaxConcurrentOps int
	// MaxUnavailableReplicas is the per-shard cap on replicas that may
	// be temporarily unavailable at once (default 1).
	MaxUnavailableReplicas int
	// MaintenanceLead is how far before a non-negotiable event's start
	// the controller begins preparing (default 2 minutes).
	MaintenanceLead time.Duration
}

// DefaultPolicy drains before restarts with a global cap of maxOps.
func DefaultPolicy(maxOps int) Policy {
	return Policy{
		DrainOnRestart:         true,
		MaxConcurrentOps:       maxOps,
		MaxUnavailableReplicas: 1,
		MaintenanceLead:        2 * time.Minute,
	}
}

type opState int

const (
	opDraining  opState = iota // waiting for the orchestrator to drain
	opReady                    // drained (or no drain needed): approve next round
	opExecuting                // approved; cluster manager is executing
)

type trackedOp struct {
	op     cluster.Operation
	region topology.RegionID
	state  opState
}

// Scheduling labels for the kernel profiler (simprof).
var (
	lbMaintPrepare = sim.LabelFor("taskcontroller", "maint_prepare")
	lbMaintRelease = sim.LabelFor("taskcontroller", "maint_release")
)

// Controller is one application's TaskController. Register it with every
// regional cluster manager hosting the application (SetController +
// AddMaintenanceListener).
type Controller struct {
	loop   *sim.Loop
	shards ShardStateProvider
	policy Policy

	// ops tracks container operations by container (at most one tracked
	// op per container at a time).
	ops      map[cluster.ContainerID]*trackedOp
	managers map[topology.RegionID]*cluster.Manager

	// Stats.
	Approved  metrics.Counter
	Delayed   metrics.Counter // approval deferrals (per negotiation round)
	Drains    metrics.Counter
	Demotions metrics.Counter
}

// New creates a TaskController for one application.
func New(loop *sim.Loop, shards ShardStateProvider, policy Policy) *Controller {
	if policy.MaxConcurrentOps <= 0 {
		policy.MaxConcurrentOps = 1
	}
	if policy.MaxUnavailableReplicas <= 0 {
		policy.MaxUnavailableReplicas = 1
	}
	if policy.MaintenanceLead <= 0 {
		policy.MaintenanceLead = 2 * time.Minute
	}
	return &Controller{
		loop:     loop,
		shards:   shards,
		policy:   policy,
		ops:      make(map[cluster.ContainerID]*trackedOp),
		managers: make(map[topology.RegionID]*cluster.Manager),
	}
}

// Attach registers the controller with a regional cluster manager for both
// the TaskControl protocol and maintenance notices.
func (c *Controller) Attach(mgr *cluster.Manager) {
	mgr.SetController(c)
	mgr.AddMaintenanceListener(c)
	c.managers[mgr.Region] = mgr
}

// inFlight counts tracked operations occupying global-cap slots.
func (c *Controller) inFlight() int { return len(c.ops) }

// OfferOperations implements cluster.Controller. It returns the subset of
// pending operations that is safe to execute now; for drain-policy apps it
// starts draining impacted containers and approves them once empty.
func (c *Controller) OfferOperations(region topology.RegionID, pending []cluster.Operation) []cluster.OperationID {
	// Deterministic processing order.
	sorted := append([]cluster.Operation(nil), pending...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].ID < sorted[j].ID })

	var approved []cluster.OperationID
	for _, op := range sorted {
		tracked := c.ops[op.Container]
		if tracked != nil {
			switch tracked.state {
			case opReady:
				tracked.state = opExecuting
				approved = append(approved, op.ID)
				c.Approved.Inc()
			case opDraining, opExecuting:
				c.Delayed.Inc()
			}
			continue
		}
		// New operation: admit it into a global-cap slot if available
		// and the per-shard cap allows taking this container down.
		if c.inFlight() >= c.policy.MaxConcurrentOps {
			c.Delayed.Inc()
			continue
		}
		if !c.shardCapAllows(op.Container) {
			c.Delayed.Inc()
			continue
		}
		needsDrain := c.policy.DrainOnRestart && opImpactsShards(op.Type) &&
			c.shards.ShardsOnServer(shard.ServerID(op.Container)) > 0
		t := &trackedOp{op: op, region: region}
		c.ops[op.Container] = t
		if !needsDrain {
			t.state = opExecuting
			approved = append(approved, op.ID)
			c.Approved.Inc()
			continue
		}
		t.state = opDraining
		c.Drains.Inc()
		container := op.Container
		c.shards.Drain(shard.ServerID(container), func() {
			if cur := c.ops[container]; cur == t && t.state == opDraining {
				t.state = opReady
			}
		})
	}
	return approved
}

// opImpactsShards reports whether the op takes the container down.
func opImpactsShards(t cluster.OpType) bool {
	switch t {
	case cluster.OpRestart, cluster.OpStop, cluster.OpMove:
		return true
	default:
		return false
	}
}

// shardCapAllows checks the per-shard unavailability cap for taking the
// container down now: for every shard hosted on it, the number of replicas
// that would be unavailable (already-dead ones, replicas on containers with
// in-flight ops, plus this one) must stay within the cap.
func (c *Controller) shardCapAllows(container cluster.ContainerID) bool {
	server := shard.ServerID(container)
	alive := c.shards.AliveReplicas(server)
	for s, aliveCount := range alive {
		total := c.shards.TotalReplicas(s)
		unavailable := total - aliveCount
		// Count replicas on other containers with in-flight tracked
		// ops (draining containers shed replicas, but until empty
		// their replicas are at risk; executing ops imply downtime).
		for otherC, t := range c.ops {
			if otherC == container {
				continue
			}
			if t.state == opExecuting || t.state == opDraining || t.state == opReady {
				if replicasOf(c.shards.AliveReplicas(shard.ServerID(otherC)), s) {
					unavailable++
				}
			}
		}
		if unavailable+1 > c.policy.MaxUnavailableReplicas {
			return false
		}
	}
	return true
}

func replicasOf(m map[shard.ID]int, s shard.ID) bool {
	_, ok := m[s]
	return ok
}

// OperationComplete implements cluster.Controller.
func (c *Controller) OperationComplete(region topology.RegionID, op cluster.Operation) {
	t := c.ops[op.Container]
	if t == nil || t.op.ID != op.ID {
		return
	}
	delete(c.ops, op.Container)
	// The container may take shards again.
	c.shards.CancelDrain(shard.ServerID(op.Container))
}

// MaintenanceScheduled implements cluster.MaintenanceListener: prepare for
// the non-negotiable event before it starts (§4.2).
func (c *Controller) MaintenanceScheduled(region topology.RegionID, ev cluster.MaintenanceEvent) {
	mgr := c.managers[region]
	if mgr == nil {
		return
	}
	prepareAt := ev.Start - c.policy.MaintenanceLead
	c.loop.AtL(prepareAt, lbMaintPrepare, func() {
		for _, machine := range ev.Machines {
			for _, container := range mgr.ContainersOnMachine(machine) {
				server := shard.ServerID(container)
				switch ev.Impact {
				case cluster.ImpactNetworkLoss:
					// Short blip: keep secondaries in place,
					// demote primaries so writes keep flowing
					// (the paper's rack-switch example).
					c.Demotions.Inc()
					c.shards.DemotePrimaries(server)
				case cluster.ImpactRestart, cluster.ImpactMachineLoss:
					if c.policy.DrainOnRestart {
						c.Drains.Inc()
						c.shards.Drain(server, nil)
					} else {
						c.Demotions.Inc()
						c.shards.DemotePrimaries(server)
					}
				}
			}
		}
	})
	// When the event ends, let the machines take shards again.
	c.loop.AtL(ev.End, lbMaintRelease, func() {
		for _, machine := range ev.Machines {
			for _, container := range mgr.ContainersOnMachine(machine) {
				c.shards.CancelDrain(shard.ServerID(container))
			}
		}
	})
}
