package taskcontroller

import (
	"testing"
	"time"

	"shardmanager/internal/cluster"
	"shardmanager/internal/shard"
	"shardmanager/internal/sim"
	"shardmanager/internal/topology"
)

// fakeShards is a scriptable ShardStateProvider.
type fakeShards struct {
	// placement: server -> shards it holds.
	placement map[shard.ServerID][]shard.ID
	// aliveOverride: shard -> alive replica count (default: count of
	// servers holding it).
	total       map[shard.ID]int
	drains      []shard.ServerID
	drainDone   map[shard.ServerID]func()
	cancelled   []shard.ServerID
	demoted     []shard.ServerID
	instantDone bool
}

func newFakeShards() *fakeShards {
	return &fakeShards{
		placement: make(map[shard.ServerID][]shard.ID),
		total:     make(map[shard.ID]int),
		drainDone: make(map[shard.ServerID]func()),
	}
}

func (f *fakeShards) place(srv shard.ServerID, shards ...shard.ID) {
	f.placement[srv] = append(f.placement[srv], shards...)
	for _, s := range shards {
		f.total[s]++
	}
}

func (f *fakeShards) AliveReplicas(server shard.ServerID) map[shard.ID]int {
	out := make(map[shard.ID]int)
	for _, s := range f.placement[server] {
		alive := 0
		for _, held := range f.placement {
			for _, h := range held {
				if h == s {
					alive++
				}
			}
		}
		out[s] = alive
	}
	return out
}

func (f *fakeShards) TotalReplicas(s shard.ID) int { return f.total[s] }

func (f *fakeShards) ShardsOnServer(server shard.ServerID) int {
	return len(f.placement[server])
}

func (f *fakeShards) Drain(server shard.ServerID, onDone func()) {
	f.drains = append(f.drains, server)
	if f.instantDone {
		f.placement[server] = nil
		if onDone != nil {
			onDone()
		}
		return
	}
	f.drainDone[server] = onDone
}

func (f *fakeShards) finishDrain(server shard.ServerID) {
	f.placement[server] = nil
	if fn := f.drainDone[server]; fn != nil {
		delete(f.drainDone, server)
		fn()
	}
}

func (f *fakeShards) CancelDrain(server shard.ServerID)     { f.cancelled = append(f.cancelled, server) }
func (f *fakeShards) DemotePrimaries(server shard.ServerID) { f.demoted = append(f.demoted, server) }

func op(id int, container string) cluster.Operation {
	return cluster.Operation{
		ID:         cluster.OperationID(id),
		Type:       cluster.OpRestart,
		Container:  cluster.ContainerID(container),
		Negotiable: true,
	}
}

func TestApprovesImmediatelyWithoutDrainPolicy(t *testing.T) {
	fs := newFakeShards()
	fs.place("c1", "s1")
	pol := DefaultPolicy(4)
	pol.DrainOnRestart = false
	pol.MaxUnavailableReplicas = 1
	c := New(sim.NewLoop(1), fs, pol)
	got := c.OfferOperations("r1", []cluster.Operation{op(1, "c1")})
	if len(got) != 1 || got[0] != 1 {
		t.Fatalf("approved = %v", got)
	}
	if len(fs.drains) != 0 {
		t.Fatal("drained despite no-drain policy")
	}
}

func TestDrainsBeforeApproving(t *testing.T) {
	fs := newFakeShards()
	fs.place("c1", "s1", "s2")
	c := New(sim.NewLoop(1), fs, DefaultPolicy(4))
	got := c.OfferOperations("r1", []cluster.Operation{op(1, "c1")})
	if len(got) != 0 {
		t.Fatalf("approved before drain: %v", got)
	}
	if len(fs.drains) != 1 || fs.drains[0] != "c1" {
		t.Fatalf("drains = %v", fs.drains)
	}
	// Still pending while draining.
	got = c.OfferOperations("r1", []cluster.Operation{op(1, "c1")})
	if len(got) != 0 {
		t.Fatal("approved while still draining")
	}
	// Drain completes; next round approves.
	fs.finishDrain("c1")
	got = c.OfferOperations("r1", []cluster.Operation{op(1, "c1")})
	if len(got) != 1 {
		t.Fatalf("not approved after drain: %v", got)
	}
	// Completion frees the slot and cancels the drain mark.
	c.OperationComplete("r1", op(1, "c1"))
	if c.inFlight() != 0 {
		t.Fatal("slot not freed")
	}
	if len(fs.cancelled) != 1 {
		t.Fatal("drain not cancelled after completion")
	}
}

func TestEmptyContainerSkipsDrain(t *testing.T) {
	fs := newFakeShards()
	c := New(sim.NewLoop(1), fs, DefaultPolicy(4))
	got := c.OfferOperations("r1", []cluster.Operation{op(1, "empty")})
	if len(got) != 1 {
		t.Fatalf("empty container not approved immediately: %v", got)
	}
	if len(fs.drains) != 0 {
		t.Fatal("drained an empty container")
	}
}

func TestGlobalCapLimitsConcurrency(t *testing.T) {
	fs := newFakeShards()
	fs.instantDone = true
	for i, srv := range []shard.ServerID{"c1", "c2", "c3", "c4"} {
		fs.place(srv, shard.ID('a'+byte(i)))
	}
	pol := DefaultPolicy(2)
	pol.DrainOnRestart = false
	c := New(sim.NewLoop(1), fs, pol)
	ops := []cluster.Operation{op(1, "c1"), op(2, "c2"), op(3, "c3"), op(4, "c4")}
	got := c.OfferOperations("r1", ops)
	if len(got) != 2 {
		t.Fatalf("approved %d, want 2 (global cap)", len(got))
	}
	// Completing one frees a slot.
	c.OperationComplete("r1", op(1, "c1"))
	got = c.OfferOperations("r1", ops[2:])
	if len(got) != 1 {
		t.Fatalf("approved %d after one completion, want 1", len(got))
	}
}

func TestPerShardCapBlocksCrossRegionDoubleRestart(t *testing.T) {
	// The paper's scenario: two regions each plan to restart a container,
	// and the two containers host the two replicas of the same shard.
	// Only one may proceed.
	fs := newFakeShards()
	fs.place("r1-c", "shardX")
	fs.place("r2-c", "shardX")
	pol := DefaultPolicy(10)
	pol.DrainOnRestart = false
	pol.MaxUnavailableReplicas = 1
	c := New(sim.NewLoop(1), fs, pol)

	got1 := c.OfferOperations("region1", []cluster.Operation{op(1, "r1-c")})
	if len(got1) != 1 {
		t.Fatalf("first region not approved: %v", got1)
	}
	got2 := c.OfferOperations("region2", []cluster.Operation{op(2, "r2-c")})
	if len(got2) != 0 {
		t.Fatal("second region approved; shard would lose both replicas")
	}
	if c.Delayed.Value() == 0 {
		t.Fatal("delay not recorded")
	}
	// First restart finishes; now the second may proceed.
	c.OperationComplete("region1", op(1, "r1-c"))
	got2 = c.OfferOperations("region2", []cluster.Operation{op(2, "r2-c")})
	if len(got2) != 1 {
		t.Fatal("second region still blocked after first completed")
	}
}

func TestAlreadyDeadReplicasCountAgainstCap(t *testing.T) {
	// shardX has 2 configured replicas but only 1 alive (unplanned
	// outage); restarting its last holder would take availability to 0.
	fs := newFakeShards()
	fs.place("c1", "shardX")
	fs.total["shardX"] = 2 // one replica already dead
	pol := DefaultPolicy(10)
	pol.DrainOnRestart = false
	pol.MaxUnavailableReplicas = 1
	c := New(sim.NewLoop(1), fs, pol)
	got := c.OfferOperations("r1", []cluster.Operation{op(1, "c1")})
	if len(got) != 0 {
		t.Fatal("approved restart that would lose the last replica")
	}
}

func TestMaintenanceNetworkLossDemotes(t *testing.T) {
	loop := sim.NewLoop(1)
	fleet := topology.Build(topology.Spec{
		Regions:           []topology.RegionID{"r1"},
		MachinesPerRegion: 2,
	})
	mgr := cluster.NewManager(loop, fleet, "r1", cluster.DefaultOptions())
	mgr.CreateJob("job", "app", 2)
	loop.RunFor(time.Minute)

	fs := newFakeShards()
	for _, cid := range mgr.RunningContainers("job") {
		fs.place(shard.ServerID(cid), "s1")
	}
	c := New(loop, fs, DefaultPolicy(4))
	c.Attach(mgr)

	cid := mgr.RunningContainers("job")[0]
	cont, _ := mgr.Container(cid)
	mgr.ScheduleMaintenance([]topology.MachineID{cont.Machine},
		loop.Now()+10*time.Minute, loop.Now()+15*time.Minute, cluster.ImpactNetworkLoss)

	// Preparation happens MaintenanceLead before start.
	loop.RunFor(7 * time.Minute)
	if len(fs.demoted) != 0 {
		t.Fatal("demoted too early")
	}
	loop.RunFor(2 * time.Minute)
	if len(fs.demoted) != 1 || fs.demoted[0] != shard.ServerID(cid) {
		t.Fatalf("demoted = %v", fs.demoted)
	}
	// After the event ends, drains are cancelled.
	loop.RunFor(10 * time.Minute)
	if len(fs.cancelled) == 0 {
		t.Fatal("no cancel after maintenance end")
	}
}

func TestMaintenanceMachineLossDrains(t *testing.T) {
	loop := sim.NewLoop(1)
	fleet := topology.Build(topology.Spec{
		Regions:           []topology.RegionID{"r1"},
		MachinesPerRegion: 2,
	})
	mgr := cluster.NewManager(loop, fleet, "r1", cluster.DefaultOptions())
	mgr.CreateJob("job", "app", 2)
	loop.RunFor(time.Minute)

	fs := newFakeShards()
	fs.instantDone = true
	for _, cid := range mgr.RunningContainers("job") {
		fs.place(shard.ServerID(cid), "s1")
	}
	c := New(loop, fs, DefaultPolicy(4))
	c.Attach(mgr)
	cid := mgr.RunningContainers("job")[0]
	cont, _ := mgr.Container(cid)
	mgr.ScheduleMaintenance([]topology.MachineID{cont.Machine},
		loop.Now()+5*time.Minute, loop.Now()+10*time.Minute, cluster.ImpactMachineLoss)
	loop.RunFor(4 * time.Minute)
	if len(fs.drains) != 1 {
		t.Fatalf("drains = %v", fs.drains)
	}
}

func TestEndToEndRollingUpgradeWithController(t *testing.T) {
	// Integration: rolling upgrade paced by the controller with instant
	// drains; all containers restart, never more than the cap at once.
	loop := sim.NewLoop(3)
	fleet := topology.Build(topology.Spec{
		Regions:           []topology.RegionID{"r1"},
		MachinesPerRegion: 10,
	})
	mgr := cluster.NewManager(loop, fleet, "r1", cluster.DefaultOptions())
	mgr.CreateJob("job", "app", 10)
	loop.RunFor(time.Minute)

	fs := newFakeShards()
	fs.instantDone = true
	for i, cid := range mgr.RunningContainers("job") {
		fs.place(shard.ServerID(cid), shard.ID(rune('a'+i)))
	}
	ctrl := New(loop, fs, DefaultPolicy(2))
	ctrl.Attach(mgr)

	done := false
	maxDown := 0
	loop.Every(time.Second, func() {
		if down := 10 - len(mgr.RunningContainers("job")); down > maxDown {
			maxDown = down
		}
	})
	mgr.RollingUpgrade("job", 10, "upgrade", func() { done = true })
	loop.RunFor(60 * time.Minute)
	if !done {
		t.Fatalf("upgrade incomplete; pending=%d executing=%d inflight=%d",
			len(mgr.PendingOps()), mgr.ExecutingOps(), ctrl.inFlight())
	}
	if maxDown > 2 {
		t.Fatalf("max concurrent down = %d, want <= 2", maxDown)
	}
	if ctrl.Approved.Value() != 10 {
		t.Fatalf("approved = %d, want 10", ctrl.Approved.Value())
	}
}
