// Package topology models the physical fleet Shard Manager places shards
// onto: geo-distributed regions, each containing datacenters, racks, and
// machines, plus a WAN latency model between regions. The paper's soft goal
// "spread of replicas across fault domains at all levels, including regions,
// data centers, and racks" (§5.1) is defined against these domains.
package topology

import (
	"fmt"
	"sort"
	"time"
)

// RegionID names a geographic region (e.g. "frc", "prn", "odn").
type RegionID string

// MachineID uniquely names a machine within the fleet.
type MachineID string

// FaultDomainLevel identifies a level of the fault-domain hierarchy.
type FaultDomainLevel int

// Fault-domain levels, largest first.
const (
	LevelRegion FaultDomainLevel = iota
	LevelDatacenter
	LevelRack
	LevelMachine
)

// String returns the lowercase level name.
func (l FaultDomainLevel) String() string {
	switch l {
	case LevelRegion:
		return "region"
	case LevelDatacenter:
		return "datacenter"
	case LevelRack:
		return "rack"
	case LevelMachine:
		return "machine"
	default:
		return fmt.Sprintf("level(%d)", int(l))
	}
}

// Resource names a capacity/load dimension.
type Resource string

// Standard resources used by the experiments. Applications may balance on
// arbitrary synthetic metrics as well (§2.2.4); those are also Resources.
const (
	ResourceCPU     Resource = "cpu"
	ResourceMemory  Resource = "memory"
	ResourceStorage Resource = "storage"
	ResourceNetwork Resource = "network"
	// ResourceShardCount is the synthetic "number of shards" metric used
	// by shard-count-based load balancing.
	ResourceShardCount Resource = "shard_count"
)

// Capacity is a multi-dimensional resource vector.
type Capacity map[Resource]float64

// Clone returns a deep copy.
func (c Capacity) Clone() Capacity {
	out := make(Capacity, len(c))
	for k, v := range c {
		out[k] = v
	}
	return out
}

// Get returns the value for r (0 if absent).
func (c Capacity) Get(r Resource) float64 { return c[r] }

// Machine is one physical host.
type Machine struct {
	ID         MachineID
	Region     RegionID
	Datacenter string
	Rack       string
	Capacity   Capacity
	// HasStorage marks SSD/HDD machines (Fig 9 distinguishes storage vs
	// non-storage machines).
	HasStorage bool
}

// Domain returns the machine's fault-domain name at the given level. Names
// are globally unique (prefixed by the enclosing domains).
func (m *Machine) Domain(level FaultDomainLevel) string {
	switch level {
	case LevelRegion:
		return string(m.Region)
	case LevelDatacenter:
		return string(m.Region) + "/" + m.Datacenter
	case LevelRack:
		return string(m.Region) + "/" + m.Datacenter + "/" + m.Rack
	case LevelMachine:
		return string(m.Region) + "/" + m.Datacenter + "/" + m.Rack + "/" + string(m.ID)
	default:
		panic(fmt.Sprintf("topology: unknown level %d", int(level)))
	}
}

// Fleet is an immutable snapshot of the machines in scope plus the WAN
// latency model.
type Fleet struct {
	machines map[MachineID]*Machine
	order    []MachineID
	regions  []RegionID
	latency  map[RegionID]map[RegionID]time.Duration
}

// NewFleet returns an empty fleet.
func NewFleet() *Fleet {
	return &Fleet{
		machines: make(map[MachineID]*Machine),
		latency:  make(map[RegionID]map[RegionID]time.Duration),
	}
}

// AddMachine registers a machine. It panics on duplicate IDs so that fleet
// construction bugs fail loudly.
func (f *Fleet) AddMachine(m *Machine) {
	if m == nil || m.ID == "" {
		panic("topology: AddMachine with nil or unnamed machine")
	}
	if _, dup := f.machines[m.ID]; dup {
		panic(fmt.Sprintf("topology: duplicate machine %q", m.ID))
	}
	f.machines[m.ID] = m
	f.order = append(f.order, m.ID)
	found := false
	for _, r := range f.regions {
		if r == m.Region {
			found = true
			break
		}
	}
	if !found {
		f.regions = append(f.regions, m.Region)
	}
}

// Machine returns the machine with the given ID, or nil.
func (f *Fleet) Machine(id MachineID) *Machine { return f.machines[id] }

// Machines returns all machines in registration order.
func (f *Fleet) Machines() []*Machine {
	out := make([]*Machine, 0, len(f.order))
	for _, id := range f.order {
		out = append(out, f.machines[id])
	}
	return out
}

// MachinesInRegion returns the machines located in region r, in registration
// order.
func (f *Fleet) MachinesInRegion(r RegionID) []*Machine {
	var out []*Machine
	for _, id := range f.order {
		if m := f.machines[id]; m.Region == r {
			out = append(out, m)
		}
	}
	return out
}

// MachinesInDomain returns the machines whose fault domain at the given
// level matches name (as produced by Machine.Domain), in registration order.
// Fault injection uses it to crash whole racks or datacenters.
func (f *Fleet) MachinesInDomain(level FaultDomainLevel, name string) []*Machine {
	var out []*Machine
	for _, id := range f.order {
		if m := f.machines[id]; m.Domain(level) == name {
			out = append(out, m)
		}
	}
	return out
}

// Regions returns the regions present, in first-seen order.
func (f *Fleet) Regions() []RegionID {
	out := make([]RegionID, len(f.regions))
	copy(out, f.regions)
	return out
}

// Size returns the number of machines.
func (f *Fleet) Size() int { return len(f.order) }

// SetLatency records the one-way network latency between two regions
// (symmetric).
func (f *Fleet) SetLatency(a, b RegionID, d time.Duration) {
	if d < 0 {
		panic("topology: negative latency")
	}
	set := func(x, y RegionID) {
		m := f.latency[x]
		if m == nil {
			m = make(map[RegionID]time.Duration)
			f.latency[x] = m
		}
		m[y] = d
	}
	set(a, b)
	set(b, a)
}

// Latency returns the one-way latency between regions. Same-region latency
// defaults to LocalLatency when unset; cross-region latency defaults to
// DefaultWANLatency when unset.
func (f *Fleet) Latency(a, b RegionID) time.Duration {
	if m, ok := f.latency[a]; ok {
		if d, ok := m[b]; ok {
			return d
		}
	}
	if a == b {
		return LocalLatency
	}
	return DefaultWANLatency
}

// Default latencies used when a fleet does not configure explicit values.
const (
	// LocalLatency approximates an intra-region round hop.
	LocalLatency = 1 * time.Millisecond
	// DefaultWANLatency approximates an unconfigured cross-region hop.
	DefaultWANLatency = 40 * time.Millisecond
)

// Spec describes a fleet to synthesize. Builder helpers construct the
// regular topologies the experiments use.
type Spec struct {
	// Regions to create, in order.
	Regions []RegionID
	// MachinesPerRegion is the machine count in each region.
	MachinesPerRegion int
	// RacksPerRegion controls rack granularity (machines are spread
	// round-robin across racks). Defaults to MachinesPerRegion/4, min 1.
	RacksPerRegion int
	// DatacentersPerRegion defaults to 1.
	DatacentersPerRegion int
	// Capacity for every machine; cloned per machine.
	Capacity Capacity
	// HasStorage marks all machines as storage machines.
	HasStorage bool
	// Latency maps region pairs to one-way latency. Optional.
	Latency map[[2]RegionID]time.Duration
}

// Build synthesizes the fleet described by the spec.
func Build(spec Spec) *Fleet {
	if len(spec.Regions) == 0 {
		panic("topology: Build with no regions")
	}
	if spec.MachinesPerRegion <= 0 {
		panic("topology: Build with no machines")
	}
	dcs := spec.DatacentersPerRegion
	if dcs <= 0 {
		dcs = 1
	}
	racks := spec.RacksPerRegion
	if racks <= 0 {
		racks = spec.MachinesPerRegion / 4
		if racks < 1 {
			racks = 1
		}
	}
	f := NewFleet()
	for _, region := range spec.Regions {
		for i := 0; i < spec.MachinesPerRegion; i++ {
			cap := spec.Capacity.Clone()
			if cap == nil {
				cap = Capacity{}
			}
			f.AddMachine(&Machine{
				ID:         MachineID(fmt.Sprintf("%s-m%04d", region, i)),
				Region:     region,
				Datacenter: fmt.Sprintf("dc%d", i%dcs),
				Rack:       fmt.Sprintf("rack%02d", i%racks),
				Capacity:   cap,
				HasStorage: spec.HasStorage,
			})
		}
	}
	for pair, d := range spec.Latency {
		f.SetLatency(pair[0], pair[1], d)
	}
	return f
}

// CountByDomain returns, for each distinct domain name at the given level,
// how many of the provided machine IDs fall into it. Unknown machines are
// ignored. Used to verify replica-spread goals in tests and experiments.
func (f *Fleet) CountByDomain(level FaultDomainLevel, ids []MachineID) map[string]int {
	out := make(map[string]int)
	for _, id := range ids {
		if m := f.machines[id]; m != nil {
			out[m.Domain(level)]++
		}
	}
	return out
}

// DistinctDomains returns the sorted distinct domain names at a level across
// the whole fleet.
func (f *Fleet) DistinctDomains(level FaultDomainLevel) []string {
	set := make(map[string]struct{})
	for _, id := range f.order {
		set[f.machines[id].Domain(level)] = struct{}{}
	}
	out := make([]string, 0, len(set))
	for d := range set {
		out = append(out, d)
	}
	sort.Strings(out)
	return out
}
