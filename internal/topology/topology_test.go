package topology

import (
	"testing"
	"time"
)

func testFleet() *Fleet {
	return Build(Spec{
		Regions:              []RegionID{"frc", "prn"},
		MachinesPerRegion:    8,
		RacksPerRegion:       4,
		DatacentersPerRegion: 2,
		Capacity:             Capacity{ResourceCPU: 100},
		HasStorage:           true,
	})
}

func TestBuildCounts(t *testing.T) {
	f := testFleet()
	if f.Size() != 16 {
		t.Fatalf("Size = %d, want 16", f.Size())
	}
	if got := len(f.MachinesInRegion("frc")); got != 8 {
		t.Fatalf("frc machines = %d, want 8", got)
	}
	regions := f.Regions()
	if len(regions) != 2 || regions[0] != "frc" || regions[1] != "prn" {
		t.Fatalf("Regions = %v", regions)
	}
}

func TestMachineDomains(t *testing.T) {
	f := testFleet()
	m := f.Machines()[0]
	if m.Domain(LevelRegion) != "frc" {
		t.Fatalf("region domain = %q", m.Domain(LevelRegion))
	}
	if m.Domain(LevelDatacenter) != "frc/dc0" {
		t.Fatalf("dc domain = %q", m.Domain(LevelDatacenter))
	}
	if m.Domain(LevelRack) != "frc/dc0/rack00" {
		t.Fatalf("rack domain = %q", m.Domain(LevelRack))
	}
	if m.Domain(LevelMachine) != "frc/dc0/rack00/frc-m0000" {
		t.Fatalf("machine domain = %q", m.Domain(LevelMachine))
	}
}

func TestDomainNamesAreGloballyUnique(t *testing.T) {
	f := testFleet()
	// rack00 exists in both regions but the qualified names must differ.
	domains := f.DistinctDomains(LevelRack)
	if len(domains) != 8 {
		t.Fatalf("distinct racks = %d, want 8 (4 per region)", len(domains))
	}
}

func TestCapacityClonedPerMachine(t *testing.T) {
	f := testFleet()
	ms := f.Machines()
	ms[0].Capacity[ResourceCPU] = 1
	if ms[1].Capacity[ResourceCPU] != 100 {
		t.Fatal("capacity map shared between machines")
	}
}

func TestLatencyDefaultsAndOverrides(t *testing.T) {
	f := testFleet()
	if got := f.Latency("frc", "frc"); got != LocalLatency {
		t.Fatalf("local latency = %v", got)
	}
	if got := f.Latency("frc", "prn"); got != DefaultWANLatency {
		t.Fatalf("default WAN latency = %v", got)
	}
	f.SetLatency("frc", "prn", 70*time.Millisecond)
	if got := f.Latency("prn", "frc"); got != 70*time.Millisecond {
		t.Fatalf("latency not symmetric: %v", got)
	}
}

func TestSetLatencyRejectsNegative(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewFleet().SetLatency("a", "b", -time.Second)
}

func TestAddMachineRejectsDuplicates(t *testing.T) {
	f := NewFleet()
	f.AddMachine(&Machine{ID: "m1", Region: "r"})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	f.AddMachine(&Machine{ID: "m1", Region: "r"})
}

func TestCountByDomain(t *testing.T) {
	f := testFleet()
	ids := []MachineID{"frc-m0000", "frc-m0001", "prn-m0000", "bogus"}
	counts := f.CountByDomain(LevelRegion, ids)
	if counts["frc"] != 2 || counts["prn"] != 1 {
		t.Fatalf("CountByDomain = %v", counts)
	}
	if len(counts) != 2 {
		t.Fatalf("unknown machine counted: %v", counts)
	}
}

func TestBuildSpreadsRacksRoundRobin(t *testing.T) {
	f := testFleet()
	var ids []MachineID
	for _, m := range f.MachinesInRegion("frc") {
		ids = append(ids, m.ID)
	}
	counts := f.CountByDomain(LevelRack, ids)
	for rack, n := range counts {
		if n != 2 {
			t.Fatalf("rack %s has %d machines, want 2", rack, n)
		}
	}
}

func TestBuildPanicsOnBadSpec(t *testing.T) {
	for name, spec := range map[string]Spec{
		"no regions":  {MachinesPerRegion: 1},
		"no machines": {Regions: []RegionID{"a"}},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			Build(spec)
		}()
	}
}

func TestBuildLatencySpec(t *testing.T) {
	f := Build(Spec{
		Regions:           []RegionID{"a", "b"},
		MachinesPerRegion: 1,
		Latency:           map[[2]RegionID]time.Duration{{"a", "b"}: 90 * time.Millisecond},
	})
	if got := f.Latency("b", "a"); got != 90*time.Millisecond {
		t.Fatalf("latency = %v", got)
	}
}

func TestFaultDomainLevelString(t *testing.T) {
	if LevelRegion.String() != "region" || LevelRack.String() != "rack" {
		t.Fatal("level names wrong")
	}
	if FaultDomainLevel(99).String() != "level(99)" {
		t.Fatal("unknown level name wrong")
	}
}
