// Chrome trace-event export. The output loads directly into
// chrome://tracing and https://ui.perfetto.dev: one "thread" per component,
// complete ("X") events for spans, instant ("i") events for point events,
// and counter ("C") tracks for gauges.
//
// The writer never iterates a Go map and renders every number itself, so a
// fixed-seed simulation exports byte-identical JSON on every run — the
// golden-file test in chrome_test.go holds the format to that promise.

package trace

import (
	"bufio"
	"encoding/json"
	"io"
	"sort"
	"strconv"
	"time"
)

// chromeRecord is one trace-event line, pre-sorted by (ts, seq).
type chromeRecord struct {
	ts   time.Duration
	seq  uint64
	line string
}

// WriteChrome renders the retained records as Chrome trace-event JSON.
func (t *Tracer) WriteChrome(w io.Writer) error {
	if t == nil {
		_, err := io.WriteString(w, `{"displayTimeUnit":"ms","traceEvents":[]}`+"\n")
		return err
	}
	t.mu.Lock()
	spans := t.spans.items()
	comps := make([]string, len(t.comps))
	copy(comps, t.comps)
	events := make(map[string][]Event, len(comps))
	samples := make(map[string][]Sample, len(comps))
	for _, c := range comps {
		events[c] = t.perComp[c].events.items()
		samples[c] = t.perComp[c].samples.items()
	}
	now := t.now()
	droppedSpans, droppedEvents := t.droppedSpans, t.droppedEvents
	t.mu.Unlock()

	tid := make(map[string]int, len(comps))
	for i, c := range comps {
		tid[c] = i + 1
	}

	bw := bufio.NewWriter(w)
	bw.WriteString(`{"displayTimeUnit":"ms","otherData":{`)
	bw.WriteString(`"droppedSpans":` + strconv.FormatUint(droppedSpans, 10))
	bw.WriteString(`,"droppedEvents":` + strconv.FormatUint(droppedEvents, 10))
	bw.WriteString(`},"traceEvents":[`)

	first := true
	emit := func(line string) {
		if !first {
			bw.WriteString(",\n")
		} else {
			bw.WriteString("\n")
			first = false
		}
		bw.WriteString(line)
	}

	// Thread-name metadata first, in component first-use order.
	for _, c := range comps {
		emit(`{"ph":"M","name":"thread_name","pid":1,"tid":` +
			strconv.Itoa(tid[c]) + `,"args":{"name":` + jsonString(c) + `}}`)
	}

	var recs []chromeRecord
	for _, sp := range spans {
		end := sp.End
		extra := ""
		if !sp.Ended {
			end = now // still open at export: draw it up to "now"
			extra = `,"incomplete":"true"`
		}
		line := `{"ph":"X","name":` + jsonString(sp.Name) +
			`,"cat":` + jsonString(sp.Component) +
			`,"ts":` + usec(sp.Start) +
			`,"dur":` + usec(end-sp.Start) +
			`,"pid":1,"tid":` + strconv.Itoa(tid[sp.Component]) +
			`,"args":{"span":"` + strconv.FormatUint(uint64(sp.ID), 10) +
			`","parent":"` + strconv.FormatUint(uint64(sp.Parent), 10) + `"` +
			extra + attrsJSON(sp.Attrs) + `}}`
		recs = append(recs, chromeRecord{ts: sp.Start, seq: sp.seq, line: line})
	}
	for _, c := range comps {
		for _, ev := range events[c] {
			line := `{"ph":"i","s":"t","name":` + jsonString(ev.Name) +
				`,"cat":` + jsonString(ev.Component) +
				`,"ts":` + usec(ev.Time) +
				`,"pid":1,"tid":` + strconv.Itoa(tid[ev.Component]) +
				`,"args":{"span":"` + strconv.FormatUint(uint64(ev.Span), 10) + `"` +
				attrsJSON(ev.Attrs) + `}}`
			recs = append(recs, chromeRecord{ts: ev.Time, seq: ev.seq, line: line})
		}
		for _, s := range samples[c] {
			line := `{"ph":"C","name":` + jsonString(s.Name) +
				`,"cat":` + jsonString(s.Component) +
				`,"ts":` + usec(s.Time) +
				`,"pid":1,"tid":` + strconv.Itoa(tid[s.Component]) +
				`,"args":{"value":` + strconv.FormatFloat(s.Value, 'g', -1, 64) + `}}`
			recs = append(recs, chromeRecord{ts: s.Time, seq: s.seq, line: line})
		}
	}
	sort.Slice(recs, func(i, j int) bool {
		if recs[i].ts != recs[j].ts {
			return recs[i].ts < recs[j].ts
		}
		return recs[i].seq < recs[j].seq
	})
	for _, r := range recs {
		emit(r.line)
	}

	bw.WriteString("\n]}\n")
	return bw.Flush()
}

// usec renders a simulated instant as microseconds with nanosecond
// precision, the unit Chrome's ts/dur fields expect.
func usec(d time.Duration) string {
	us := d / time.Microsecond
	rem := d % time.Microsecond
	if rem == 0 {
		return strconv.FormatInt(int64(us), 10)
	}
	return strconv.FormatInt(int64(us), 10) + "." + pad3(int64(rem))
}

func pad3(v int64) string {
	s := strconv.FormatInt(v, 10)
	for len(s) < 3 {
		s = "0" + s
	}
	return s
}

// attrsJSON renders attributes as ,"k":"v" pairs (keys already unique per
// call site; order is the attribute slice's order).
func attrsJSON(attrs []Attr) string {
	out := ""
	for _, a := range attrs {
		out += "," + jsonString(a.Key) + ":" + jsonString(a.Val)
	}
	return out
}

// jsonString renders a Go string as a JSON string literal.
func jsonString(s string) string {
	b, err := json.Marshal(s)
	if err != nil { // cannot happen for strings
		return `"?"`
	}
	return string(b)
}
