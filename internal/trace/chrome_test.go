package trace

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"
	"time"
)

var update = flag.Bool("update", false, "rewrite golden files")

// buildFixedTrace records a small, fully deterministic trace exercising every
// record kind: nested spans, an open span, events, counters, and attribute
// values needing JSON escaping.
func buildFixedTrace() *Tracer {
	clk := newTestClock(0)
	tr := New(Options{})
	tr.SetClock(clk)

	root := tr.StartSpan("orchestrator", "migration", 0,
		String("shard", "s00001"), String("from", `srv"a"`), Bool("graceful", true))
	clk.Advance(1500 * time.Microsecond)
	prep := tr.StartSpan("orchestrator", "prepare_add_shard", root, String("server", "srv-b"))
	tr.Event("rpcnet", "tx", prep)
	clk.Advance(2 * time.Millisecond)
	tr.EndSpan(prep, String("status", "ok"))
	tr.Counter("sim.loop", "queue_depth", 3)
	clk.Advance(time.Duration(2500500)) // 2.5005ms: fractional microseconds
	tr.Event("orchestrator", "publish", root, Int64("version", 7))
	tr.EndSpan(root, Bool("ok", true))
	tr.StartSpan("routing", "request", 0, String("key", "s00001/key")) // left open
	tr.Counter("sim.loop", "queue_depth", 0.5)
	return tr
}

// TestWriteChromeGolden holds the exporter to its byte-stability promise: a
// fixed trace must serialize to exactly the checked-in bytes. Regenerate
// deliberately with: go test ./internal/trace -run Golden -update
func TestWriteChromeGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := buildFixedTrace().WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "chrome_golden.json")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("reading golden file (run with -update to create): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("Chrome export deviates from golden file.\ngot:\n%s\nwant:\n%s", buf.Bytes(), want)
	}
}

func TestWriteChromeIsValidJSON(t *testing.T) {
	var buf bytes.Buffer
	if err := buildFixedTrace().WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		DisplayTimeUnit string `json:"displayTimeUnit"`
		OtherData       struct {
			DroppedSpans  uint64 `json:"droppedSpans"`
			DroppedEvents uint64 `json:"droppedEvents"`
		} `json:"otherData"`
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, buf.String())
	}
	if doc.DisplayTimeUnit != "ms" {
		t.Fatalf("displayTimeUnit = %q", doc.DisplayTimeUnit)
	}
	byPhase := map[string]int{}
	for _, ev := range doc.TraceEvents {
		byPhase[ev["ph"].(string)]++
	}
	if byPhase["M"] != 4 { // orchestrator, rpcnet, sim.loop, routing
		t.Fatalf("thread_name records = %d, want 4 (%v)", byPhase["M"], byPhase)
	}
	if byPhase["X"] != 3 { // migration, prepare_add_shard, and the open request span
		t.Fatalf("span records = %d, want 3 (%v)", byPhase["X"], byPhase)
	}
	if byPhase["i"] != 2 { // tx, publish
		t.Fatalf("instant records = %d, want 2 (%v)", byPhase["i"], byPhase)
	}
	if byPhase["C"] != 2 {
		t.Fatalf("counter records = %d, want 2 (%v)", byPhase["C"], byPhase)
	}
}

// TestWriteChromeDeterministic builds the same trace twice and byte-compares
// the exports — the guarantee the golden test depends on, checked directly.
func TestWriteChromeDeterministic(t *testing.T) {
	var a, b bytes.Buffer
	if err := buildFixedTrace().WriteChrome(&a); err != nil {
		t.Fatal(err)
	}
	if err := buildFixedTrace().WriteChrome(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("two identical traces exported different bytes")
	}
}

func TestUsecRendering(t *testing.T) {
	cases := []struct {
		d    time.Duration
		want string
	}{
		{0, "0"},
		{time.Microsecond, "1"},
		{1500 * time.Nanosecond, "1.500"},
		{time.Duration(2500500), "2500.500"},
		{time.Second, "1000000"},
		{time.Nanosecond, "0.001"},
	}
	for _, c := range cases {
		if got := usec(c.d); got != c.want {
			t.Fatalf("usec(%v) = %q, want %q", c.d, got, c.want)
		}
	}
}
