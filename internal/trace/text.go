// Human-readable text timeline export: every retained record on one line,
// in simulated-time order, with span begin/end markers indented by depth.
// Useful for quick terminal inspection and for diffing two runs without a
// trace viewer.

package trace

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"time"
)

// textRecord is one renderable line.
type textRecord struct {
	ts   time.Duration
	seq  uint64
	line string
}

// WriteText renders the retained records as a chronological text timeline.
func (t *Tracer) WriteText(w io.Writer) error {
	if t == nil {
		_, err := io.WriteString(w, "(tracing disabled)\n")
		return err
	}
	spans := t.Spans()
	events := t.Events()
	samples := t.Samples()
	droppedSpans, droppedEvents := t.Dropped()

	// Span depth via parent chains, for indentation.
	byID := make(map[SpanID]*Span, len(spans))
	for _, sp := range spans {
		byID[sp.ID] = sp
	}
	var depth func(id SpanID) int
	depth = func(id SpanID) int {
		d := 0
		for sp := byID[id]; sp != nil && sp.Parent != 0; sp = byID[sp.Parent] {
			d++
		}
		return d
	}

	var recs []textRecord
	for _, sp := range spans {
		ind := indent(depth(sp.ID))
		recs = append(recs, textRecord{sp.Start, sp.seq, fmt.Sprintf(
			"%-12s %-14s %s> %s #%d%s", fmtTS(sp.Start), sp.Component, ind, sp.Name, sp.ID, attrsText(sp.Attrs))})
		if sp.Ended {
			// End lines sort by end time; give them a seq after every
			// start at the same instant by reusing the span's seq.
			recs = append(recs, textRecord{sp.End, sp.seq, fmt.Sprintf(
				"%-12s %-14s %s< %s #%d dur=%s", fmtTS(sp.End), sp.Component, ind, sp.Name, sp.ID, sp.Duration())})
		}
	}
	for _, ev := range events {
		recs = append(recs, textRecord{ev.Time, ev.seq, fmt.Sprintf(
			"%-12s %-14s * %s span=%d%s", fmtTS(ev.Time), ev.Component, ev.Name, ev.Span, attrsText(ev.Attrs))})
	}
	for _, s := range samples {
		recs = append(recs, textRecord{s.Time, s.seq, fmt.Sprintf(
			"%-12s %-14s = %s %g", fmtTS(s.Time), s.Component, s.Name, s.Value)})
	}
	sort.SliceStable(recs, func(i, j int) bool {
		if recs[i].ts != recs[j].ts {
			return recs[i].ts < recs[j].ts
		}
		return recs[i].seq < recs[j].seq
	})

	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "trace: %d spans, %d events, %d samples (dropped: %d spans, %d events)\n",
		len(spans), len(events), len(samples), droppedSpans, droppedEvents)
	for _, r := range recs {
		bw.WriteString(r.line)
		bw.WriteByte('\n')
	}
	return bw.Flush()
}

func fmtTS(d time.Duration) string { return d.String() }

func indent(depth int) string {
	const pad = "  "
	out := ""
	for i := 0; i < depth && i < 8; i++ {
		out += pad
	}
	return out
}

func attrsText(attrs []Attr) string {
	out := ""
	for _, a := range attrs {
		out += " " + a.Key + "=" + a.Val
	}
	return out
}
