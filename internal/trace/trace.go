// Package trace is a zero-dependency, simulated-clock-native tracing
// subsystem for the Shard Manager control plane. The paper's evaluation is
// built on narratives — what happened during a failover, an upgrade window,
// a migration storm (§7–§8) — and aggregate curves cannot answer "why did
// this one migration take 9s". A Tracer records hierarchical spans,
// structured point events, and counter samples against the simulation
// clock, in bounded per-component rings, and exports them as Chrome
// trace-event JSON (chrome://tracing / Perfetto) or a human-readable text
// timeline.
//
// Because every timestamp comes from the deterministic simulation clock and
// every record carries a global insertion sequence, the exported trace of a
// fixed-seed experiment is byte-identical across runs — a trace is as
// reproducible as the experiment it came from.
//
// A nil *Tracer is valid and disabled: every method is a nil-receiver
// no-op, so instrumented code paths pay only a pointer test when tracing is
// off (hot paths additionally guard attribute construction behind
// Enabled).
package trace

import (
	"strconv"
	"sync"
	"time"
)

// Clock supplies the current simulated time. It is structurally identical
// to sim.Clock; trace declares its own copy so the sim package can depend
// on trace without a cycle.
type Clock interface {
	Now() time.Duration
}

// SpanID identifies one span. Zero means "no span" (no parent / disabled
// tracer).
type SpanID uint64

// Attr is one key/value attribute attached to a span or event. Values are
// pre-rendered strings so records are immutable and export is trivially
// deterministic.
type Attr struct {
	Key, Val string
}

// String builds a string attribute.
func String(k, v string) Attr { return Attr{Key: k, Val: v} }

// Int builds an integer attribute.
func Int(k string, v int) Attr { return Attr{Key: k, Val: strconv.Itoa(v)} }

// Int64 builds an int64 attribute.
func Int64(k string, v int64) Attr { return Attr{Key: k, Val: strconv.FormatInt(v, 10)} }

// Bool builds a boolean attribute.
func Bool(k string, v bool) Attr { return Attr{Key: k, Val: strconv.FormatBool(v)} }

// Dur builds a duration attribute.
func Dur(k string, d time.Duration) Attr { return Attr{Key: k, Val: d.String()} }

// Float builds a float attribute with deterministic formatting.
func Float(k string, v float64) Attr {
	return Attr{Key: k, Val: strconv.FormatFloat(v, 'g', -1, 64)}
}

// Span is one hierarchical interval: a migration, an RPC round trip, a
// client request including its retries.
type Span struct {
	ID        SpanID
	Parent    SpanID
	Component string
	Name      string
	Start     time.Duration
	End       time.Duration
	Ended     bool
	Attrs     []Attr

	seq uint64
	// evicted marks a span dropped from the retention ring while still
	// open; EndSpan returns it to the free list instead of the ring.
	evicted bool
}

// Duration returns End-Start for ended spans and 0 for open ones.
func (s *Span) Duration() time.Duration {
	if !s.Ended {
		return 0
	}
	return s.End - s.Start
}

// Attr returns the value of the named attribute ("" if absent).
func (s *Span) Attr(key string) string {
	for _, a := range s.Attrs {
		if a.Key == key {
			return a.Val
		}
	}
	return ""
}

// Event is one structured point event, optionally associated with a span.
type Event struct {
	Component string
	Name      string
	Span      SpanID
	Time      time.Duration
	Attrs     []Attr

	seq uint64
}

// Sample is one counter observation (a gauge over time, rendered as a
// Chrome counter track).
type Sample struct {
	Component string
	Name      string
	Time      time.Duration
	Value     float64

	seq uint64
}

// Options bound the tracer's memory.
type Options struct {
	// MaxSpans caps retained spans; the oldest are dropped first
	// (default 131072).
	MaxSpans int
	// MaxEventsPerComponent caps each component's event ring
	// (default 32768).
	MaxEventsPerComponent int
	// MaxSamplesPerComponent caps each component's counter ring
	// (default 32768).
	MaxSamplesPerComponent int
}

func (o *Options) fillDefaults() {
	if o.MaxSpans <= 0 {
		o.MaxSpans = 1 << 17
	}
	if o.MaxEventsPerComponent <= 0 {
		o.MaxEventsPerComponent = 1 << 15
	}
	if o.MaxSamplesPerComponent <= 0 {
		o.MaxSamplesPerComponent = 1 << 15
	}
}

// ring is a bounded FIFO: pushing past capacity drops the oldest element.
type ring[T any] struct {
	buf  []T
	head int
	n    int
}

func newRing[T any](capacity int) *ring[T] { return &ring[T]{buf: make([]T, 0, capacity)} }

// push appends v, reporting whether an old element was dropped to make room.
func (r *ring[T]) push(v T) bool {
	_, dropped := r.pushEvict(v)
	return dropped
}

// pushEvict appends v and returns the element it displaced, if any — the
// span ring recycles evicted records through the tracer's free list.
func (r *ring[T]) pushEvict(v T) (old T, dropped bool) {
	if len(r.buf) < cap(r.buf) {
		r.buf = append(r.buf, v)
		r.n++
		return old, false
	}
	old = r.buf[r.head]
	r.buf[r.head] = v
	r.head = (r.head + 1) % len(r.buf)
	return old, true
}

// items returns the retained elements oldest-first.
func (r *ring[T]) items() []T {
	out := make([]T, 0, len(r.buf))
	out = append(out, r.buf[r.head:]...)
	out = append(out, r.buf[:r.head]...)
	return out
}

// componentEvents holds one component's bounded event and counter rings.
type componentEvents struct {
	events  *ring[Event]
	samples *ring[Sample]
}

// Tracer records spans, events, and counter samples on a simulated clock.
// The zero value is not usable; create one with New. A nil *Tracer is the
// disabled tracer: all methods are no-ops.
//
// Tracer is safe for concurrent use (the coord store fires watches under
// its own locking discipline), though within a simulation all calls happen
// on the single event-loop goroutine.
type Tracer struct {
	mu    sync.Mutex
	clock Clock
	opts  Options

	seq      uint64
	nextSpan SpanID

	spans *ring[*Span]
	open  map[SpanID]*Span
	// free recycles spans evicted from the full retention ring: once the
	// ring wraps, steady-state StartSpan allocates nothing. Spans returned
	// by Spans() stay valid only until the ring overflows again.
	free []*Span

	comps   []string // component first-use order, for stable export
	perComp map[string]*componentEvents

	droppedSpans  uint64
	droppedEvents uint64
}

// New returns an enabled tracer. Bind a time source with SetClock (sim.Loop
// does this automatically in SetTracer); until then records are stamped at
// t=0.
func New(opts Options) *Tracer {
	opts.fillDefaults()
	return &Tracer{
		opts:    opts,
		spans:   newRing[*Span](opts.MaxSpans),
		open:    make(map[SpanID]*Span),
		perComp: make(map[string]*componentEvents),
	}
}

// Enabled reports whether the tracer records anything. It is the guard hot
// paths use before building attributes.
func (t *Tracer) Enabled() bool { return t != nil }

// SetClock binds the time source used to stamp records.
func (t *Tracer) SetClock(c Clock) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.clock = c
	t.mu.Unlock()
}

// now returns the current time; callers hold t.mu.
func (t *Tracer) now() time.Duration {
	if t.clock == nil {
		return 0
	}
	return t.clock.Now()
}

func (t *Tracer) component(name string) *componentEvents {
	ce, ok := t.perComp[name]
	if !ok {
		ce = &componentEvents{
			events:  newRing[Event](t.opts.MaxEventsPerComponent),
			samples: newRing[Sample](t.opts.MaxSamplesPerComponent),
		}
		t.perComp[name] = ce
		t.comps = append(t.comps, name)
	}
	return ce
}

// StartSpan opens a span under parent (0 for a root span) and returns its
// ID. On a nil tracer it returns 0.
func (t *Tracer) StartSpan(component, name string, parent SpanID, attrs ...Attr) SpanID {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.nextSpan++
	t.seq++
	var sp *Span
	if n := len(t.free); n > 0 {
		sp = t.free[n-1]
		t.free = t.free[:n-1]
		*sp = Span{
			ID:        t.nextSpan,
			Parent:    parent,
			Component: component,
			Name:      name,
			Start:     t.now(),
			Attrs:     append(sp.Attrs[:0], attrs...),
			seq:       t.seq,
		}
	} else {
		sp = &Span{
			ID:        t.nextSpan,
			Parent:    parent,
			Component: component,
			Name:      name,
			Start:     t.now(),
			Attrs:     attrs,
			seq:       t.seq,
		}
	}
	t.component(component) // reserve the component's export slot in first-use order
	if old, dropped := t.spans.pushEvict(sp); dropped {
		t.droppedSpans++
		if old != nil {
			if old.Ended {
				t.free = append(t.free, old)
			} else {
				// Still open: EndSpan will recycle it once it closes.
				old.evicted = true
			}
		}
	}
	t.open[sp.ID] = sp
	return sp.ID
}

// EndSpan closes the span, appending any final attributes. Ending an
// unknown, already-ended, or zero span is a no-op.
func (t *Tracer) EndSpan(id SpanID, attrs ...Attr) {
	if t == nil || id == 0 {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	sp, ok := t.open[id]
	if !ok {
		return
	}
	delete(t.open, id)
	sp.End = t.now()
	sp.Ended = true
	sp.Attrs = append(sp.Attrs, attrs...)
	if sp.evicted {
		sp.evicted = false
		t.free = append(t.free, sp)
	}
}

// Event records a structured point event, optionally tied to a span (0 for
// none).
func (t *Tracer) Event(component, name string, span SpanID, attrs ...Attr) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.seq++
	ev := Event{
		Component: component,
		Name:      name,
		Span:      span,
		Time:      t.now(),
		Attrs:     attrs,
		seq:       t.seq,
	}
	if t.component(component).events.push(ev) {
		t.droppedEvents++
	}
}

// Counter records one sample of a named gauge (queue depth, loop lag).
func (t *Tracer) Counter(component, name string, value float64) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.seq++
	s := Sample{Component: component, Name: name, Time: t.now(), Value: value, seq: t.seq}
	if t.component(component).samples.push(s) {
		t.droppedEvents++
	}
}

// Spans returns the retained spans oldest-first. The returned spans are the
// live records; callers must not mutate them.
func (t *Tracer) Spans() []*Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.spans.items()
}

// Events returns the retained events of every component, oldest-first per
// component, components in first-use order.
func (t *Tracer) Events() []Event {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	var out []Event
	for _, c := range t.comps {
		out = append(out, t.perComp[c].events.items()...)
	}
	return out
}

// Samples returns the retained counter samples of every component.
func (t *Tracer) Samples() []Sample {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	var out []Sample
	for _, c := range t.comps {
		out = append(out, t.perComp[c].samples.items()...)
	}
	return out
}

// Components returns the component names in first-use order.
func (t *Tracer) Components() []string {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]string, len(t.comps))
	copy(out, t.comps)
	return out
}

// Dropped returns how many spans and events/samples were evicted from the
// bounded rings; exporters report it so a truncated trace never reads as a
// complete one.
func (t *Tracer) Dropped() (spans, events uint64) {
	if t == nil {
		return 0, 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.droppedSpans, t.droppedEvents
}

// FindSpans returns the retained spans of a component with the given name
// (both "" match all), oldest-first — a test and debugging helper.
func (t *Tracer) FindSpans(component, name string) []*Span {
	var out []*Span
	for _, sp := range t.Spans() {
		if (component == "" || sp.Component == component) && (name == "" || sp.Name == name) {
			out = append(out, sp)
		}
	}
	return out
}

// Children returns the retained spans whose parent is id, oldest-first.
func (t *Tracer) Children(id SpanID) []*Span {
	var out []*Span
	for _, sp := range t.Spans() {
		if sp.Parent == id {
			out = append(out, sp)
		}
	}
	return out
}
