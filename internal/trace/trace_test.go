package trace

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

// testClock is a hand-advanced Clock; the trace package cannot use
// sim.ManualClock in its own tests because sim imports trace.
type testClock struct{ now time.Duration }

func (c *testClock) Now() time.Duration        { return c.now }
func (c *testClock) Advance(d time.Duration)   { c.now += d }
func newTestClock(at time.Duration) *testClock { return &testClock{now: at} }

func TestNilTracerIsSafeAndDisabled(t *testing.T) {
	var tr *Tracer
	if tr.Enabled() {
		t.Fatal("nil tracer reports enabled")
	}
	sp := tr.StartSpan("c", "n", 0, String("k", "v"))
	if sp != 0 {
		t.Fatalf("nil StartSpan = %d, want 0", sp)
	}
	tr.EndSpan(sp)
	tr.Event("c", "n", 0)
	tr.Counter("c", "n", 1)
	tr.SetClock(newTestClock(0))
	if tr.Spans() != nil || tr.Events() != nil || tr.Samples() != nil || tr.Components() != nil {
		t.Fatal("nil tracer returned records")
	}
	if s, e := tr.Dropped(); s != 0 || e != 0 {
		t.Fatal("nil tracer reports drops")
	}
	var buf bytes.Buffer
	if err := tr.WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"traceEvents":[]`) {
		t.Fatalf("nil WriteChrome = %q", buf.String())
	}
	buf.Reset()
	if err := tr.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "disabled") {
		t.Fatalf("nil WriteText = %q", buf.String())
	}
}

func TestSpanLifecycle(t *testing.T) {
	clk := newTestClock(0)
	tr := New(Options{})
	tr.SetClock(clk)

	root := tr.StartSpan("orch", "migration", 0, String("shard", "s1"))
	clk.Advance(time.Second)
	child := tr.StartSpan("orch", "add_shard", root)
	clk.Advance(2 * time.Second)
	tr.EndSpan(child, String("status", "ok"))
	clk.Advance(time.Second)
	tr.EndSpan(root, Bool("ok", true))

	spans := tr.Spans()
	if len(spans) != 2 {
		t.Fatalf("spans = %d, want 2", len(spans))
	}
	rs, cs := spans[0], spans[1]
	if rs.Name != "migration" || cs.Name != "add_shard" {
		t.Fatalf("span order wrong: %s, %s", rs.Name, cs.Name)
	}
	if cs.Parent != rs.ID {
		t.Fatalf("child parent = %d, want %d", cs.Parent, rs.ID)
	}
	if rs.Duration() != 4*time.Second || cs.Duration() != 2*time.Second {
		t.Fatalf("durations = %v, %v", rs.Duration(), cs.Duration())
	}
	if rs.Attr("shard") != "s1" || rs.Attr("ok") != "true" || rs.Attr("absent") != "" {
		t.Fatalf("attrs wrong: %+v", rs.Attrs)
	}
	kids := tr.Children(rs.ID)
	if len(kids) != 1 || kids[0].ID != cs.ID {
		t.Fatalf("Children = %v", kids)
	}
	if got := tr.FindSpans("orch", "add_shard"); len(got) != 1 || got[0].ID != cs.ID {
		t.Fatalf("FindSpans = %v", got)
	}
}

func TestEndSpanEdgeCases(t *testing.T) {
	tr := New(Options{})
	tr.EndSpan(0)    // zero span: no-op
	tr.EndSpan(9999) // unknown span: no-op
	sp := tr.StartSpan("c", "n", 0)
	tr.EndSpan(sp)
	tr.EndSpan(sp, String("again", "true")) // double end: no-op
	spans := tr.Spans()
	if len(spans) != 1 {
		t.Fatalf("spans = %d", len(spans))
	}
	if spans[0].Attr("again") != "" {
		t.Fatal("double EndSpan appended attributes")
	}
}

func TestRingDropsOldestAndCounts(t *testing.T) {
	tr := New(Options{MaxSpans: 4, MaxEventsPerComponent: 3, MaxSamplesPerComponent: 2})
	for i := 0; i < 6; i++ {
		id := tr.StartSpan("c", "s", 0, Int("i", i))
		tr.EndSpan(id)
	}
	spans := tr.Spans()
	if len(spans) != 4 {
		t.Fatalf("retained %d spans, want 4", len(spans))
	}
	if spans[0].Attr("i") != "2" || spans[3].Attr("i") != "5" {
		t.Fatalf("wrong retained window: first=%s last=%s", spans[0].Attr("i"), spans[3].Attr("i"))
	}
	for i := 0; i < 5; i++ {
		tr.Event("c", "e", 0, Int("i", i))
		tr.Counter("c", "g", float64(i))
	}
	if n := len(tr.Events()); n != 3 {
		t.Fatalf("retained %d events, want 3", n)
	}
	if n := len(tr.Samples()); n != 2 {
		t.Fatalf("retained %d samples, want 2", n)
	}
	ds, de := tr.Dropped()
	if ds != 2 {
		t.Fatalf("droppedSpans = %d, want 2", ds)
	}
	if de != 5 { // 2 events + 3 samples evicted
		t.Fatalf("droppedEvents = %d, want 5", de)
	}
}

func TestAttrConstructors(t *testing.T) {
	cases := []struct {
		a    Attr
		k, v string
	}{
		{String("s", "x"), "s", "x"},
		{Int("i", -3), "i", "-3"},
		{Int64("i64", 1<<40), "i64", "1099511627776"},
		{Bool("b", true), "b", "true"},
		{Dur("d", 1500*time.Millisecond), "d", "1.5s"},
		{Float("f", 0.25), "f", "0.25"},
	}
	for _, c := range cases {
		if c.a.Key != c.k || c.a.Val != c.v {
			t.Fatalf("attr %q = %q, want %q", c.k, c.a.Val, c.v)
		}
	}
}

func TestComponentsFirstUseOrder(t *testing.T) {
	tr := New(Options{})
	tr.Event("zeta", "e", 0)
	tr.StartSpan("alpha", "s", 0)
	tr.Counter("mid", "g", 1)
	tr.Event("zeta", "e2", 0)
	got := tr.Components()
	want := []string{"zeta", "alpha", "mid"}
	if len(got) != len(want) {
		t.Fatalf("components = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("components = %v, want %v", got, want)
		}
	}
}

func TestWriteTextTimeline(t *testing.T) {
	clk := newTestClock(0)
	tr := New(Options{})
	tr.SetClock(clk)
	root := tr.StartSpan("orch", "migration", 0, String("shard", "s1"))
	clk.Advance(time.Second)
	child := tr.StartSpan("orch", "add_shard", root)
	tr.Event("net", "rx", child)
	clk.Advance(time.Second)
	tr.EndSpan(child)
	tr.EndSpan(root)
	tr.Counter("loop", "depth", 7)

	var buf bytes.Buffer
	if err := tr.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"2 spans, 1 events, 1 samples",
		"> migration #1 shard=s1",
		"  > add_shard #2", // indented one level under the root
		"* rx span=2",
		"< add_shard #2 dur=1s",
		"= depth 7",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("timeline missing %q:\n%s", want, out)
		}
	}
}
