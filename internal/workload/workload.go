// Package workload synthesizes the inputs the paper's evaluation consumes:
//
//   - A synthetic fleet of sharded applications whose property
//     distributions are calibrated to the paper's §2 survey (Figures 4-9),
//     plus aggregation helpers that recompute those breakdowns — the
//     demographic figures are survey data, so the harness reproduces them
//     by drawing a fleet from the published marginals and re-aggregating.
//   - Deployment-size distributions (power law) for the production-scale
//     scatter plots (Figures 15-16).
//   - The planned-vs-unplanned container-stop event stream (Figure 1).
//   - The SM adoption growth curve (Figure 2).
//   - Load shapes: the diurnal pattern driving Figures 18 and 23 and a
//     Zipf key-popularity sampler for request generators.
package workload

import (
	"fmt"
	"math"
	"time"

	"shardmanager/internal/shard"
	"shardmanager/internal/sim"
)

// Scheme is an application's sharding scheme (Figure 4).
type Scheme int

// Sharding schemes.
const (
	SchemeSM Scheme = iota
	SchemeStatic
	SchemeConsistentHashing
	SchemeCustom
)

// String returns the scheme name.
func (s Scheme) String() string {
	switch s {
	case SchemeSM:
		return "using SM"
	case SchemeStatic:
		return "static sharding"
	case SchemeConsistentHashing:
		return "consistent hashing"
	case SchemeCustom:
		return "custom sharding"
	default:
		return fmt.Sprintf("scheme(%d)", int(s))
	}
}

// Deployment is regional vs geo-distributed (Figure 5).
type Deployment int

// Deployment modes.
const (
	DeploymentRegional Deployment = iota
	DeploymentGeo
)

// String returns the deployment name.
func (d Deployment) String() string {
	if d == DeploymentGeo {
		return "geo-distributed"
	}
	return "regional"
}

// LBPolicy is the load-balancing policy class (Figure 7).
type LBPolicy int

// Load-balancing policies.
const (
	LBShardCount LBPolicy = iota
	LBSingleResource
	LBSingleSynthetic
	LBMultiMetric
)

// String returns the policy name.
func (p LBPolicy) String() string {
	switch p {
	case LBShardCount:
		return "shard count"
	case LBSingleResource:
		return "single resource"
	case LBSingleSynthetic:
		return "single synthetic"
	case LBMultiMetric:
		return "multiple metrics"
	default:
		return fmt.Sprintf("lb(%d)", int(p))
	}
}

// AppProfile is one synthetic sharded application.
type AppProfile struct {
	Name    string
	Scheme  Scheme
	Servers int
	Shards  int

	// SM-application properties (meaningful when Scheme == SchemeSM).
	Deployment       Deployment
	Strategy         shard.ReplicationStrategy
	LB               LBPolicy
	DrainPrimaries   bool
	DrainSecondaries bool
	Storage          bool
	// RegionPreferences marks geo apps that dictate regional
	// shard-placement preferences (§2.2.4: 33% of geo servers).
	RegionPreferences bool
}

// Fleet is a set of synthetic applications.
type Fleet []AppProfile

// GenerateFleet draws n applications from the paper's §2 marginals.
// Deterministic for a given rng state.
func GenerateFleet(rng *sim.RNG, n int) Fleet {
	fleet := make(Fleet, 0, n)
	for i := 0; i < n; i++ {
		app := AppProfile{Name: fmt.Sprintf("app%03d", i)}

		// Scheme shares by #application (Figure 4): SM 54%, static
		// 35%, consistent hashing 10%, custom 1%.
		r := rng.Float64()
		switch {
		case r < 0.54:
			app.Scheme = SchemeSM
		case r < 0.89:
			app.Scheme = SchemeStatic
		case r < 0.99:
			app.Scheme = SchemeConsistentHashing
		default:
			app.Scheme = SchemeCustom
		}

		// Server counts: heavy-tailed, with per-scheme scale factors
		// tuned so the by-#server shares land near Figure 4 (custom
		// sharding: 1% of apps but 27% of servers).
		base := powerLaw(rng, 4, 20000, 1.45)
		switch app.Scheme {
		case SchemeCustom:
			base = powerLaw(rng, 4000, 30000, 1.25)
		case SchemeSM:
			base = powerLaw(rng, 4, 8000, 1.40)
		case SchemeConsistentHashing:
			base = powerLaw(rng, 4, 12000, 1.5)
		case SchemeStatic:
			base = powerLaw(rng, 4, 15000, 1.35)
		}
		app.Servers = base
		// Shards per server: typically tens to low hundreds (Fig 15's
		// largest deployment: 19K servers, 2.6M shards ≈ 137/server).
		app.Shards = app.Servers * (10 + rng.Intn(150))

		if app.Scheme != SchemeSM {
			fleet = append(fleet, app)
			continue
		}

		// The SM property multipliers below capture that geo,
		// secondary-only, multi-metric, and storage apps are all
		// larger than average; the combined factor is capped so a
		// single app cannot dominate the synthetic fleet.
		sizeFactor := 1.0

		// Geo vs regional (Figure 5): 33% of SM apps geo-distributed;
		// geo apps are larger (58% of servers), captured by an upscale.
		if rng.Float64() < 0.33 {
			app.Deployment = DeploymentGeo
			sizeFactor *= 2.8
			// §2.2.4: region-placement preferences cover 33% of
			// geo-distributed server usage.
			app.RegionPreferences = rng.Float64() < 0.33
		}

		// Replication strategy (Figure 6): primary-only 68%,
		// primary-secondary 24%, secondary-only 8% by #application.
		r = rng.Float64()
		switch {
		case r < 0.68:
			app.Strategy = shard.PrimaryOnly
		case r < 0.92:
			app.Strategy = shard.PrimarySecondary
		default:
			app.Strategy = shard.SecondaryOnly
			// Secondary-only apps account for 34% of servers from
			// 8% of apps: they are large.
			sizeFactor *= 3.5
		}

		// LB policy (Figure 7 / §2.2.4 text): 55% shard count, ~10%
		// single resource, ~10% single synthetic, rest multi-metric;
		// multi-metric apps hold most servers (65%).
		r = rng.Float64()
		switch {
		case r < 0.55:
			app.LB = LBShardCount
		case r < 0.65:
			app.LB = LBSingleResource
		case r < 0.75:
			app.LB = LBSingleSynthetic
		default:
			app.LB = LBMultiMetric
			sizeFactor *= 2.2
		}

		// Drain policies (Figure 8): 94% drain primaries; 22% drain
		// secondaries.
		app.DrainPrimaries = rng.Float64() < 0.94
		app.DrainSecondaries = rng.Float64() < 0.22

		// Storage machines (Figure 9): 18% of apps, 38% of servers.
		app.Storage = rng.Float64() < 0.18
		if app.Storage {
			sizeFactor *= 2.0
		}

		if sizeFactor > 6 {
			sizeFactor = 6
		}
		app.Servers = int(float64(app.Servers) * sizeFactor)
		app.Shards = int(float64(app.Shards) * sizeFactor)

		fleet = append(fleet, app)
	}
	return fleet
}

// powerLaw samples a bounded Pareto-ish integer in [lo, hi] with tail
// exponent alpha.
func powerLaw(rng *sim.RNG, lo, hi int, alpha float64) int {
	u := rng.Float64()
	l, h := float64(lo), float64(hi)
	x := math.Pow(math.Pow(l, 1-alpha)+u*(math.Pow(h, 1-alpha)-math.Pow(l, 1-alpha)), 1/(1-alpha))
	v := int(x)
	if v < lo {
		v = lo
	}
	if v > hi {
		v = hi
	}
	return v
}

// Share is one row of a breakdown table.
type Share struct {
	Label     string
	ByApps    float64
	ByServers float64
}

// breakdown aggregates by an arbitrary labeling function.
func (f Fleet) breakdown(include func(AppProfile) bool, label func(AppProfile) string, order []string) []Share {
	apps := make(map[string]int)
	servers := make(map[string]int)
	totalApps, totalServers := 0, 0
	for _, a := range f {
		if !include(a) {
			continue
		}
		l := label(a)
		apps[l]++
		servers[l] += a.Servers
		totalApps++
		totalServers += a.Servers
	}
	out := make([]Share, 0, len(order))
	for _, l := range order {
		out = append(out, Share{
			Label:     l,
			ByApps:    ratio(apps[l], totalApps),
			ByServers: ratio(servers[l], totalServers),
		})
	}
	return out
}

func ratio(a, b int) float64 {
	if b == 0 {
		return 0
	}
	return float64(a) / float64(b)
}

func all(AppProfile) bool      { return true }
func smOnly(a AppProfile) bool { return a.Scheme == SchemeSM }

// SchemeBreakdown reproduces Figure 4.
func (f Fleet) SchemeBreakdown() []Share {
	return f.breakdown(all, func(a AppProfile) string { return a.Scheme.String() },
		[]string{SchemeSM.String(), SchemeStatic.String(), SchemeConsistentHashing.String(), SchemeCustom.String()})
}

// DeploymentBreakdown reproduces Figure 5 (SM apps only).
func (f Fleet) DeploymentBreakdown() []Share {
	return f.breakdown(smOnly, func(a AppProfile) string { return a.Deployment.String() },
		[]string{DeploymentGeo.String(), DeploymentRegional.String()})
}

// StrategyBreakdown reproduces Figure 6 (SM apps only).
func (f Fleet) StrategyBreakdown() []Share {
	return f.breakdown(smOnly, func(a AppProfile) string { return a.Strategy.String() },
		[]string{shard.PrimaryOnly.String(), shard.PrimarySecondary.String(), shard.SecondaryOnly.String()})
}

// LBBreakdown reproduces Figure 7 (SM apps only).
func (f Fleet) LBBreakdown() []Share {
	return f.breakdown(smOnly, func(a AppProfile) string { return a.LB.String() },
		[]string{LBShardCount.String(), LBSingleResource.String(), LBSingleSynthetic.String(), LBMultiMetric.String()})
}

// DrainBreakdown reproduces Figure 8: share of apps/servers draining
// primaries and secondaries.
func (f Fleet) DrainBreakdown() (primaries, secondaries []Share) {
	primaries = f.breakdown(smOnly, func(a AppProfile) string {
		if a.DrainPrimaries {
			return "drain"
		}
		return "no drain"
	}, []string{"drain", "no drain"})
	secondaries = f.breakdown(smOnly, func(a AppProfile) string {
		if a.DrainSecondaries {
			return "drain"
		}
		return "no drain"
	}, []string{"drain", "no drain"})
	return primaries, secondaries
}

// StorageBreakdown reproduces Figure 9 (SM apps only).
func (f Fleet) StorageBreakdown() []Share {
	return f.breakdown(smOnly, func(a AppProfile) string {
		if a.Storage {
			return "storage"
		}
		return "non-storage"
	}, []string{"storage", "non-storage"})
}

// SMApps returns only the SM applications.
func (f Fleet) SMApps() Fleet {
	var out Fleet
	for _, a := range f {
		if a.Scheme == SchemeSM {
			out = append(out, a)
		}
	}
	return out
}

// TotalServers sums server counts.
func (f Fleet) TotalServers() int {
	n := 0
	for _, a := range f {
		n += a.Servers
	}
	return n
}

// --- Figure 1: planned vs unplanned container stops ---

// StopSample is one time bucket of container-stop counts.
type StopSample struct {
	Week      int
	Planned   int64
	Unplanned int64
}

// ContainerStopSeries simulates weeks of fleet operation events. Planned
// events (software updates, maintenance) dominate unplanned failures by
// ~1000x (Figure 1), with noise and occasional incident spikes.
func ContainerStopSeries(rng *sim.RNG, weeks int, fleetContainers int) []StopSample {
	out := make([]StopSample, weeks)
	for w := 0; w < weeks; w++ {
		// Each container restarts for planned reasons ~2x/week
		// (deploys happen daily for many apps; amortized fleet-wide).
		planned := float64(fleetContainers) * (1.5 + rng.Float64())
		// Unplanned: hardware failure rates, ~1/1000 of planned.
		unplanned := planned / 1000 * (0.5 + rng.Float64())
		// Occasional incident spike.
		if rng.Float64() < 0.05 {
			unplanned *= 5
		}
		out[w] = StopSample{Week: w, Planned: int64(planned), Unplanned: int64(unplanned)}
	}
	return out
}

// --- Figure 2: adoption growth ---

// AdoptionPoint is one (year, machines) sample.
type AdoptionPoint struct {
	Year     float64
	Machines float64
}

// AdoptionCurve models SM's machine growth 2012-2021 as logistic growth
// reaching ~1.1M machines (Figure 2 shows the 100K line crossed around
// 2017 with continued rapid growth).
func AdoptionCurve(points int) []AdoptionPoint {
	out := make([]AdoptionPoint, points)
	for i := 0; i < points; i++ {
		year := 2012 + 9*float64(i)/float64(points-1)
		// Logistic: midpoint 2019, capacity 1.15M.
		m := 1.15e6 / (1 + math.Exp(-1.1*(year-2019)))
		out[i] = AdoptionPoint{Year: year, Machines: m}
	}
	return out
}

// --- load shapes ---

// Diurnal returns a multiplicative load factor in [1-amplitude, 1+amplitude]
// following a day-long sinusoid peaking mid-day.
func Diurnal(t time.Duration, amplitude float64) float64 {
	day := float64(24 * time.Hour)
	phase := 2 * math.Pi * (float64(t)/day - 0.25) // trough at t=0... peak at 6h? standard shape
	return 1 + amplitude*math.Sin(phase)
}

// Zipf samples key indices in [0, n) with Zipf(s) popularity. It uses
// rejection-free inverse-CDF over precomputed cumulative weights, suitable
// for the modest n the experiments use.
type Zipf struct {
	cum []float64
}

// NewZipf builds a sampler over n keys with exponent s (s > 0; larger is
// more skewed).
func NewZipf(n int, s float64) *Zipf {
	if n <= 0 {
		panic("workload: NewZipf with n <= 0")
	}
	cum := make([]float64, n)
	total := 0.0
	for i := 0; i < n; i++ {
		total += 1 / math.Pow(float64(i+1), s)
		cum[i] = total
	}
	for i := range cum {
		cum[i] /= total
	}
	return &Zipf{cum: cum}
}

// Sample returns a key index.
func (z *Zipf) Sample(rng *sim.RNG) int {
	u := rng.Float64()
	lo, hi := 0, len(z.cum)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cum[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}
