package workload

import (
	"math"
	"testing"
	"time"

	"shardmanager/internal/sim"
)

func genFleet(t *testing.T) Fleet {
	t.Helper()
	return GenerateFleet(sim.NewRNG(42), 300)
}

func findShare(shares []Share, label string) Share {
	for _, s := range shares {
		if s.Label == label {
			return s
		}
	}
	return Share{}
}

func within(got, want, tol float64) bool { return math.Abs(got-want) <= tol }

func TestSchemeBreakdownMatchesPaper(t *testing.T) {
	f := genFleet(t)
	b := f.SchemeBreakdown()
	sm := findShare(b, "using SM")
	if !within(sm.ByApps, 0.54, 0.08) {
		t.Fatalf("SM by apps = %.2f, want ~0.54", sm.ByApps)
	}
	static := findShare(b, "static sharding")
	if !within(static.ByApps, 0.35, 0.08) {
		t.Fatalf("static by apps = %.2f, want ~0.35", static.ByApps)
	}
	custom := findShare(b, "custom sharding")
	// Custom sharding: ~1% of apps but a large server share (paper: 27%).
	if custom.ByApps > 0.05 {
		t.Fatalf("custom by apps = %.2f, want ~0.01", custom.ByApps)
	}
	if custom.ByServers < 0.08 {
		t.Fatalf("custom by servers = %.2f, want large (paper 0.27)", custom.ByServers)
	}
}

func TestDeploymentBreakdownMatchesPaper(t *testing.T) {
	f := genFleet(t)
	b := f.DeploymentBreakdown()
	geo := findShare(b, "geo-distributed")
	if !within(geo.ByApps, 0.33, 0.10) {
		t.Fatalf("geo by apps = %.2f, want ~0.33", geo.ByApps)
	}
	if geo.ByServers <= geo.ByApps {
		t.Fatalf("geo apps should be larger than regional: servers %.2f apps %.2f",
			geo.ByServers, geo.ByApps)
	}
}

func TestStrategyBreakdownMatchesPaper(t *testing.T) {
	f := genFleet(t)
	b := f.StrategyBreakdown()
	po := findShare(b, "primary-only")
	if !within(po.ByApps, 0.68, 0.10) {
		t.Fatalf("primary-only by apps = %.2f, want ~0.68", po.ByApps)
	}
	so := findShare(b, "secondary-only")
	if so.ByServers <= so.ByApps {
		t.Fatalf("secondary-only should be server-heavy: %.2f vs %.2f", so.ByServers, so.ByApps)
	}
}

func TestLBBreakdownMatchesPaper(t *testing.T) {
	f := genFleet(t)
	b := f.LBBreakdown()
	sc := findShare(b, "shard count")
	if !within(sc.ByApps, 0.55, 0.10) {
		t.Fatalf("shard-count by apps = %.2f, want ~0.55", sc.ByApps)
	}
	mm := findShare(b, "multiple metrics")
	if mm.ByServers < 0.35 {
		t.Fatalf("multi-metric by servers = %.2f, want dominant (paper 0.65)", mm.ByServers)
	}
}

func TestDrainBreakdownMatchesPaper(t *testing.T) {
	f := genFleet(t)
	prim, sec := f.DrainBreakdown()
	if got := findShare(prim, "drain").ByApps; !within(got, 0.94, 0.06) {
		t.Fatalf("drain primaries by apps = %.2f, want ~0.94", got)
	}
	if got := findShare(sec, "drain").ByApps; !within(got, 0.22, 0.10) {
		t.Fatalf("drain secondaries by apps = %.2f, want ~0.22", got)
	}
}

func TestStorageBreakdownMatchesPaper(t *testing.T) {
	f := genFleet(t)
	b := f.StorageBreakdown()
	st := findShare(b, "storage")
	if !within(st.ByApps, 0.18, 0.08) {
		t.Fatalf("storage by apps = %.2f, want ~0.18", st.ByApps)
	}
	if st.ByServers <= st.ByApps {
		t.Fatalf("storage apps should be server-heavy: %.2f vs %.2f", st.ByServers, st.ByApps)
	}
}

func TestFleetDeterministicForSeed(t *testing.T) {
	a := GenerateFleet(sim.NewRNG(7), 100)
	b := GenerateFleet(sim.NewRNG(7), 100)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("fleet differs at %d: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestSMAppsFilter(t *testing.T) {
	f := genFleet(t)
	for _, a := range f.SMApps() {
		if a.Scheme != SchemeSM {
			t.Fatal("non-SM app in SMApps")
		}
	}
}

func TestPowerLawBounds(t *testing.T) {
	rng := sim.NewRNG(1)
	for i := 0; i < 10000; i++ {
		v := powerLaw(rng, 4, 20000, 1.45)
		if v < 4 || v > 20000 {
			t.Fatalf("powerLaw out of bounds: %d", v)
		}
	}
}

func TestPowerLawIsHeavyTailed(t *testing.T) {
	rng := sim.NewRNG(1)
	small, large := 0, 0
	for i := 0; i < 10000; i++ {
		v := powerLaw(rng, 4, 20000, 1.45)
		if v < 100 {
			small++
		}
		if v > 5000 {
			large++
		}
	}
	if small < 5000 {
		t.Fatalf("most draws should be small: %d/10000", small)
	}
	if large == 0 {
		t.Fatal("tail never sampled")
	}
}

func TestContainerStopSeriesRatio(t *testing.T) {
	series := ContainerStopSeries(sim.NewRNG(3), 26, 100000)
	if len(series) != 26 {
		t.Fatalf("weeks = %d", len(series))
	}
	var planned, unplanned int64
	for _, s := range series {
		planned += s.Planned
		unplanned += s.Unplanned
		if s.Planned <= 0 || s.Unplanned < 0 {
			t.Fatalf("bad sample %+v", s)
		}
	}
	ratio := float64(planned) / float64(unplanned)
	if ratio < 300 || ratio > 3000 {
		t.Fatalf("planned/unplanned = %.0f, want ~1000", ratio)
	}
}

func TestAdoptionCurveShape(t *testing.T) {
	curve := AdoptionCurve(20)
	if len(curve) != 20 {
		t.Fatalf("points = %d", len(curve))
	}
	if curve[0].Year != 2012 || curve[len(curve)-1].Year != 2021 {
		t.Fatalf("year range = %v..%v", curve[0].Year, curve[len(curve)-1].Year)
	}
	for i := 1; i < len(curve); i++ {
		if curve[i].Machines <= curve[i-1].Machines {
			t.Fatal("adoption not monotonically growing")
		}
	}
	last := curve[len(curve)-1].Machines
	if last < 9e5 {
		t.Fatalf("2021 machines = %.0f, want ~1M", last)
	}
}

func TestDiurnalBoundsAndPeriod(t *testing.T) {
	for h := 0; h < 48; h++ {
		v := Diurnal(time.Duration(h)*time.Hour, 0.4)
		if v < 0.6-1e-9 || v > 1.4+1e-9 {
			t.Fatalf("diurnal(%dh) = %v out of bounds", h, v)
		}
	}
	// 24h periodicity.
	a := Diurnal(3*time.Hour, 0.4)
	b := Diurnal(27*time.Hour, 0.4)
	if math.Abs(a-b) > 1e-9 {
		t.Fatalf("not periodic: %v vs %v", a, b)
	}
}

func TestZipfSkewAndBounds(t *testing.T) {
	z := NewZipf(1000, 1.1)
	rng := sim.NewRNG(5)
	counts := make([]int, 1000)
	for i := 0; i < 100000; i++ {
		k := z.Sample(rng)
		if k < 0 || k >= 1000 {
			t.Fatalf("sample %d out of range", k)
		}
		counts[k]++
	}
	if counts[0] < counts[500]*10 {
		t.Fatalf("zipf not skewed: head=%d mid=%d", counts[0], counts[500])
	}
}

func TestZipfPanicsOnBadN(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewZipf(0, 1)
}

func TestEnumStrings(t *testing.T) {
	if SchemeSM.String() != "using SM" || DeploymentGeo.String() != "geo-distributed" ||
		LBMultiMetric.String() != "multiple metrics" {
		t.Fatal("enum names wrong")
	}
}
