#!/bin/sh
# Tier-1 verification: vet, build, and test (with the race detector) the
# whole module. Run via `make check` or directly.
set -eu
cd "$(dirname "$0")/.."

echo "== go vet ./..."
go vet ./...
echo "== go build ./..."
go build ./...
echo "== go test -race ./..."
go test -race ./...
echo "check: OK"
