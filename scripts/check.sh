#!/bin/sh
# Tier-1 verification: vet, build, and test (with the race detector) the
# whole module. Run via `make check` or directly.
set -eu
cd "$(dirname "$0")/.."

echo "== gofmt -l"
fmt_out="$(gofmt -l .)"
if [ -n "$fmt_out" ]; then
	echo "gofmt: the following files need formatting:" >&2
	echo "$fmt_out" >&2
	exit 1
fi
echo "== go vet ./..."
go vet ./...
echo "== go build ./..."
go build ./...
echo "== go test -race (all packages except sim-heavy experiments)"
# experiments is single-threaded discrete-event simulation and takes ~150s
# under the race detector for zero extra coverage; it runs un-instrumented
# below instead.
go test -race $(go list ./... | grep -v 'internal/experiments$')
echo "== go test -race ./internal/audit/..."
go test -race ./internal/audit/...
echo "== go test -race ./internal/controlplane/..."
go test -race ./internal/controlplane/...
echo "== go test ./internal/experiments"
go test ./internal/experiments
echo "== audit torture smoke (12 seeds, must be violation-free)"
go run ./cmd/smbench -fig torture -torture-seeds 12 -foundbugs-out "" -fail-on-bugs
echo "== solver benchmark smoke (-benchtime=1x)"
go test ./internal/solver -run '^$' -bench . -benchtime=1x
echo "== sim-kernel benchmark smoke (-benchtime=1x)"
go test . -run '^$' -bench 'ProfilerOverhead|SimScale' -benchtime=1x
echo "== kernel-bench smoke (120k-shard point vs committed BENCH_sim.json, >20% regression fails)"
go run ./cmd/smbench -fig simscale -sim-smoke -sim-baseline BENCH_sim.json -bench-sim-out ""
echo "== control-plane smoke (100k-shard point vs committed BENCH_controlplane.json, >20% regression fails)"
go run ./cmd/smbench -controlscale -controlplane-baseline BENCH_controlplane.json -bench-controlplane-out ""
echo "check: OK"
